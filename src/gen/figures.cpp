#include "flexopt/gen/figures.hpp"

#include <stdexcept>

namespace flexopt {

BusParams didactic_params() {
  BusParams p;
  p.gd_bit = 100;                    // 10 Mbit/s
  p.gd_macrotick = timeunits::us(1);
  p.gd_minislot = timeunits::us(1);
  p.frame.overhead_bits = 0;         // abstract units: size 1 byte == 1 us
  p.frame.bits_per_payload_byte = 10;
  return p;
}

FigureBundle build_fig1() {
  FigureBundle b;
  b.params = didactic_params();
  Application& app = b.app;

  const NodeId n1 = app.add_node("N1");
  const NodeId n2 = app.add_node("N2");
  const NodeId n3 = app.add_node("N3");

  // One graph; period = two bus cycles (cycle = 3*4 us ST + 12 us DYN = 24).
  const Time period = timeunits::us(48);
  const GraphId g = app.add_graph("fig1", period, period);

  auto sender = [&](const char* name, NodeId node, TaskPolicy policy) {
    return app.add_task(g, name, node, timeunits::us(1), policy, 0);
  };
  // Receivers all live on N1 unless the sender is on N1.
  auto receiver = [&](const char* name, NodeId node, TaskPolicy policy) {
    return app.add_task(g, name, node, timeunits::us(1), policy, 1);
  };

  // ST messages: ma (N2, slot 1 / cycle 1), mb (N1, slot 2 / cycle 2 — via
  // a release offset past the first cycle), mc (N2, slot 3 / cycle 1).
  const TaskId t_ma = sender("t_ma", n2, TaskPolicy::Scs);
  const TaskId t_mb = sender("t_mb", n1, TaskPolicy::Scs);
  const TaskId t_mc = sender("t_mc", n2, TaskPolicy::Scs);
  app.set_task_release_offset(t_mb, timeunits::us(25));

  const MessageId ma = app.add_message(g, "ma", t_ma, receiver("r_ma", n1, TaskPolicy::Scs), 2,
                                       MessageClass::Static);
  const MessageId mb = app.add_message(g, "mb", t_mb, receiver("r_mb", n2, TaskPolicy::Scs), 2,
                                       MessageClass::Static);
  const MessageId mc = app.add_message(g, "mc", t_mc, receiver("r_mc", n1, TaskPolicy::Scs), 2,
                                       MessageClass::Static);

  // DYN messages: md (N3, FrameID 1), me (N2, FrameID 2, 3 minislots),
  // mf/mg (N2, shared FrameID 4, priority(mf) > priority(mg)),
  // mh (N3, FrameID 5, 4 minislots — delayed to cycle 2 by pLatestTx).
  const TaskId t_md = sender("t_md", n3, TaskPolicy::Fps);
  const TaskId t_me = sender("t_me", n2, TaskPolicy::Fps);
  const TaskId t_mf = sender("t_mf", n2, TaskPolicy::Fps);
  const TaskId t_mg = sender("t_mg", n2, TaskPolicy::Fps);
  const TaskId t_mh = sender("t_mh", n3, TaskPolicy::Fps);

  const MessageId md = app.add_message(g, "md", t_md, receiver("r_md", n1, TaskPolicy::Fps), 2,
                                       MessageClass::Dynamic, 0);
  const MessageId me = app.add_message(g, "me", t_me, receiver("r_me", n1, TaskPolicy::Fps), 3,
                                       MessageClass::Dynamic, 0);
  const MessageId mf = app.add_message(g, "mf", t_mf, receiver("r_mf", n1, TaskPolicy::Fps), 4,
                                       MessageClass::Dynamic, 0);
  const MessageId mg = app.add_message(g, "mg", t_mg, receiver("r_mg", n1, TaskPolicy::Fps), 2,
                                       MessageClass::Dynamic, 1);
  const MessageId mh = app.add_message(g, "mh", t_mh, receiver("r_mh", n1, TaskPolicy::Fps), 4,
                                       MessageClass::Dynamic, 0);

  const auto fin = app.finalize();
  if (!fin.ok()) throw std::logic_error("figure builder: " + fin.error().message);

  BusConfig cfg;
  cfg.static_slot_count = 3;
  cfg.static_slot_len = timeunits::us(4);
  cfg.static_slot_owner = {n2, n1, n2};  // slots 1/3 -> N2, slot 2 -> N1
  cfg.minislot_count = 12;
  cfg.frame_id.assign(app.message_count(), 0);
  cfg.frame_id[index_of(md)] = 1;
  cfg.frame_id[index_of(me)] = 2;
  cfg.frame_id[index_of(mf)] = 4;
  cfg.frame_id[index_of(mg)] = 4;
  cfg.frame_id[index_of(mh)] = 5;
  b.configs.push_back(cfg);
  b.labels.emplace_back("fig1");
  b.focus = {ma, mb, mc, md, me, mf, mg, mh};
  return b;
}

FigureBundle build_fig3() {
  FigureBundle b;
  b.params = didactic_params();
  Application& app = b.app;

  const NodeId n1 = app.add_node("N1");
  const NodeId n2 = app.add_node("N2");
  const Time period = timeunits::us(240);
  const GraphId g = app.add_graph("fig3", period, period);

  auto task = [&](const char* name, NodeId node) {
    return app.add_task(g, name, node, timeunits::us(1), TaskPolicy::Scs, 0);
  };
  const TaskId s1 = task("s1", n1);
  const TaskId s2 = task("s2", n2);
  const TaskId s3 = task("s3", n2);
  const MessageId m1 =
      app.add_message(g, "m1", s1, task("r1", n2), 4, MessageClass::Static);
  const MessageId m2 =
      app.add_message(g, "m2", s2, task("r2", n1), 3, MessageClass::Static);
  const MessageId m3 =
      app.add_message(g, "m3", s3, task("r3", n1), 2, MessageClass::Static);
  (void)m1;
  (void)m2;

  const auto fin = app.finalize();
  if (!fin.ok()) throw std::logic_error("figure builder: " + fin.error().message);

  auto make = [&](int slots, Time slot_len, std::vector<NodeId> owners) {
    BusConfig cfg;
    cfg.static_slot_count = slots;
    cfg.static_slot_len = slot_len;
    cfg.static_slot_owner = std::move(owners);
    cfg.minislot_count = 0;
    cfg.frame_id.assign(app.message_count(), 0);
    return cfg;
  };
  // (a) two minimal slots; (b) three slots, N2 owns two; (c) two longer
  // slots so m2 and m3 pack into one frame.
  b.configs.push_back(make(2, timeunits::us(4), {n1, n2}));
  b.configs.push_back(make(3, timeunits::us(4), {n1, n2, n2}));
  b.configs.push_back(make(2, timeunits::us(5), {n1, n2}));
  b.labels = {"a: 2 x 4", "b: 3 x 4", "c: 2 x 5 (packing)"};
  b.focus = {m3};
  return b;
}

FigureBundle build_fig4() {
  FigureBundle b;
  b.params = didactic_params();
  Application& app = b.app;

  const NodeId n1 = app.add_node("N1");
  const NodeId n2 = app.add_node("N2");
  const Time period = timeunits::us(200);
  const GraphId g = app.add_graph("fig4", period, period);

  auto task = [&](const char* name, NodeId node, int priority) {
    return app.add_task(g, name, node, timeunits::us(1), TaskPolicy::Fps, priority);
  };
  const TaskId sender1 = task("s13", n1, 0);  // sends m1 and m3
  const TaskId sender2 = task("s2", n2, 0);   // sends m2

  // Frame footprints (minislots): m1 = 3, m2 = 5, m3 = 2 — chosen so that
  // with a 7-minislot DYN segment m2 misses the first cycle while m3 fits
  // (scenario b), exactly the situation of the figure.
  const MessageId m1 =
      app.add_message(g, "m1", sender1, task("r1", n2, 1), 3, MessageClass::Dynamic, 0);
  const MessageId m2 =
      app.add_message(g, "m2", sender2, task("r2", n1, 1), 5, MessageClass::Dynamic, 0);
  const MessageId m3 =
      app.add_message(g, "m3", sender1, task("r3", n2, 2), 2, MessageClass::Dynamic, 1);

  const auto fin = app.finalize();
  if (!fin.ok()) throw std::logic_error("figure builder: " + fin.error().message);

  auto make = [&](int minislots, int f1, int f2, int f3) {
    BusConfig cfg;
    cfg.static_slot_count = 1;
    cfg.static_slot_len = timeunits::us(8);  // the figure's "ST = 8"
    cfg.static_slot_owner = {n1};
    cfg.minislot_count = minislots;
    cfg.frame_id.assign(app.message_count(), 0);
    cfg.frame_id[index_of(m1)] = f1;
    cfg.frame_id[index_of(m2)] = f2;
    cfg.frame_id[index_of(m3)] = f3;
    return cfg;
  };
  b.configs.push_back(make(7, 1, 2, 1));   // (a) Table A: m1/m3 share FrameID 1
  b.configs.push_back(make(7, 1, 2, 3));   // (b) Table B: unique FrameIDs
  b.configs.push_back(make(10, 1, 2, 3));  // (c) Table B + enlarged DYN segment
  b.labels = {"a: shared FrameID", "b: unique FrameIDs", "c: unique + larger DYN"};
  b.focus = {m2, m1, m3};
  return b;
}

FigureBundle build_fig7() {
  FigureBundle b;
  BusParams params;  // realistic 10 Mbit/s parameters, 5 us minislots
  params.gd_bit = 100;
  params.gd_macrotick = timeunits::us(1);
  params.gd_minislot = timeunits::us(5);
  b.params = params;
  Application& app = b.app;

  // 3 nodes, 45 tasks in 9 graphs of 5, 10 ST + 20 DYN messages:
  //  * 2 TT chain graphs fully crossing nodes: 4 ST messages each (8)
  //  * 1 TT graph with 2 crossings (2) -> 10 ST
  //  * 5 ET chain graphs fully crossing: 4 DYN messages each -> 20 DYN
  //  * 1 local ET graph with no crossings.
  const NodeId nodes[3] = {app.add_node("N1"), app.add_node("N2"), app.add_node("N3")};

  int st_priority = 0;
  int dyn_priority = 0;
  auto add_chain = [&](const char* name, bool tt, Time period, const int node_pattern[5],
                       int size_bytes) {
    const GraphId g = app.add_graph(name, period, period);
    TaskId prev{};
    for (int i = 0; i < 5; ++i) {
      const TaskId t = app.add_task(
          g, std::string(name) + "_t" + std::to_string(i), nodes[node_pattern[i]],
          timeunits::us(400), tt ? TaskPolicy::Scs : TaskPolicy::Fps, dyn_priority % 24);
      if (i > 0) {
        if (app.task(prev).node == app.task(t).node) {
          app.add_dependency(prev, t);
        } else {
          app.add_message(g, std::string(name) + "_m" + std::to_string(i), prev, t, size_bytes,
                          tt ? MessageClass::Static : MessageClass::Dynamic,
                          tt ? st_priority++ : dyn_priority++);
        }
      }
      prev = t;
    }
  };

  const int crossing[5] = {0, 1, 2, 0, 1};   // every edge crosses nodes
  const int two_cross[5] = {0, 0, 0, 1, 2};  // two crossings
  const int local[5] = {2, 2, 2, 2, 2};      // no messages

  add_chain("tt0", true, timeunits::ms(20), crossing, 8);
  add_chain("tt1", true, timeunits::ms(40), crossing, 12);
  add_chain("tt2", true, timeunits::ms(40), two_cross, 8);
  add_chain("et0", false, timeunits::ms(20), crossing, 24);
  add_chain("et1", false, timeunits::ms(20), crossing, 40);
  add_chain("et2", false, timeunits::ms(40), crossing, 16);
  add_chain("et3", false, timeunits::ms(40), crossing, 56);
  add_chain("et4", false, timeunits::ms(40), crossing, 32);
  add_chain("et5", false, timeunits::ms(40), local, 8);

  const auto fin = app.finalize();
  if (!fin.ok()) throw std::logic_error("fig7 builder: " + fin.error().message);
  if (app.task_count() != 45 || app.message_count() != 30) {
    throw std::logic_error("fig7 builder: unexpected system size");
  }

  // Fixed ST segment (the paper pins it at 1286 us); FrameIDs 1..20 in
  // declaration order; minislot_count is swept by the bench.
  BusConfig cfg;
  cfg.static_slot_count = 3;
  cfg.static_slot_len = timeunits::us(160);
  cfg.static_slot_owner = {nodes[0], nodes[1], nodes[2]};
  cfg.minislot_count = 0;  // bench overrides
  cfg.frame_id.assign(app.message_count(), 0);
  int next_fid = 1;
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (app.messages()[m].cls == MessageClass::Dynamic) cfg.frame_id[m] = next_fid++;
  }
  b.configs.push_back(cfg);
  b.labels.emplace_back("fig7 base (sweep minislot_count)");
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (app.messages()[m].cls == MessageClass::Dynamic) {
      b.focus.push_back(static_cast<MessageId>(m));
    }
  }
  return b;
}

}  // namespace flexopt
