#pragma once

/// \file placement.hpp
/// Deterministic task-placement helpers shared by the scenario generator
/// family (flexopt/gen/scenario.hpp).  Exposed in a header so placement
/// invariants — every node capped at its `tasks_per_node` capacity — can be
/// regression-tested directly.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "flexopt/model/ids.hpp"

namespace flexopt {

/// Task placement for the GatewayHeavy family: odd chain positions go to
/// the designated gateway (node 0) while it has capacity, even positions to
/// the fullest non-gateway node — so consecutive chain hops land on
/// different nodes and almost every edge becomes a bus message.
///
/// Capacity contract: place() never assigns a node beyond `tasks_per_node`
/// while any node still has capacity, and over-subscription (more place()
/// calls than nodes * tasks_per_node) spills round-robin across all nodes.
/// The pre-fix implementation silently dumped every surplus task on node 0
/// once the non-gateway nodes were full, skewing the family's utilisation.
class GatewayPlacer {
 public:
  GatewayPlacer(int nodes, int tasks_per_node)
      : remaining_(static_cast<std::size_t>(nodes), tasks_per_node),
        placed_(static_cast<std::size_t>(nodes), 0) {}

  NodeId place(int chain_position) {
    const bool want_gateway = chain_position % 2 == 1;
    std::size_t best = 0;
    if (!(want_gateway && remaining_[0] > 0)) {
      for (std::size_t n = 1; n < remaining_.size(); ++n) {
        if (remaining_[n] > remaining_[best] || (best == 0 && remaining_[n] > 0)) best = n;
      }
      if (remaining_[best] <= 0) best = 0;  // only the gateway has slots left
    }
    if (remaining_[best] <= 0) {
      // Every node is full: spill round-robin instead of over-filling the
      // gateway (capacity is a soft limit only under over-subscription).
      best = spill_cursor_++ % remaining_.size();
    } else {
      --remaining_[best];
    }
    ++placed_[best];
    return static_cast<NodeId>(static_cast<std::uint32_t>(best));
  }

  /// Tasks placed on `node` so far (regression hook).
  [[nodiscard]] int placed(NodeId node) const { return placed_[index_of(node)]; }
  [[nodiscard]] int capacity_left(NodeId node) const { return remaining_[index_of(node)]; }

 private:
  std::vector<int> remaining_;
  std::vector<int> placed_;
  std::size_t spill_cursor_ = 0;
};

/// Per-cluster capacity-aware placement for the MultiCluster family: picks
/// the node of `cluster` with the most remaining capacity (lowest index on
/// ties) and spills round-robin within the cluster when it is full.
class ClusterPlacer {
 public:
  /// `cluster_nodes[c]` lists the NodeIds of cluster c's compute nodes.
  ClusterPlacer(std::vector<std::vector<NodeId>> cluster_nodes, int tasks_per_node)
      : cluster_nodes_(std::move(cluster_nodes)), spill_cursor_(cluster_nodes_.size(), 0) {
    std::size_t max_node = 0;
    for (const auto& nodes : cluster_nodes_) {
      for (const NodeId n : nodes) max_node = std::max<std::size_t>(max_node, index_of(n));
    }
    remaining_.assign(max_node + 1, 0);
    for (const auto& nodes : cluster_nodes_) {
      for (const NodeId n : nodes) remaining_[index_of(n)] = tasks_per_node;
    }
  }

  NodeId place(std::size_t cluster) {
    const auto& nodes = cluster_nodes_[cluster];
    std::size_t best = 0;
    for (std::size_t i = 1; i < nodes.size(); ++i) {
      if (remaining_[index_of(nodes[i])] > remaining_[index_of(nodes[best])]) best = i;
    }
    if (remaining_[index_of(nodes[best])] <= 0) {
      return nodes[spill_cursor_[cluster]++ % nodes.size()];
    }
    --remaining_[index_of(nodes[best])];
    return nodes[best];
  }

 private:
  std::vector<std::vector<NodeId>> cluster_nodes_;
  std::vector<int> remaining_;
  std::vector<std::size_t> spill_cursor_;
};

}  // namespace flexopt
