#pragma once

/// \file figures.hpp
/// Builders for the didactic systems of the paper's figures, each paired
/// with the bus configurations the figure compares.  These power the
/// Fig. 1/3/4 walkthrough tests and benches and the Fig. 7 curve bench.

#include <string>
#include <vector>

#include "flexopt/flexray/bus_config.hpp"
#include "flexopt/flexray/params.hpp"
#include "flexopt/model/application.hpp"

namespace flexopt {

/// An application plus the scenario configurations a figure compares.
/// The application must outlive any BusLayout built from the bundle.
struct FigureBundle {
  Application app;
  BusParams params;
  std::vector<BusConfig> configs;
  std::vector<std::string> labels;
  /// Message ids of interest (e.g. m3 in Fig. 3, m2 in Fig. 4).
  std::vector<MessageId> focus;
};

/// Abstract-unit bus parameters for the figure systems: zero frame
/// overhead, 1 byte = 1 us on the wire, 1 us minislots — so the paper's
/// abstract message "sizes" map directly to time units.
BusParams didactic_params();

/// Fig. 1: three nodes, messages ma..mh over two bus cycles, including the
/// pLatestTx-delayed mh.  One configuration (the figure's).
FigureBundle build_fig1();

/// Fig. 3: ST segment structure vs response time of m3 — scenarios
/// (a) two minimal slots, (b) three slots, (c) two longer slots with frame
/// packing.  Expected: R3(a)=16, R3(b)=12, R3(c)=10 (paper values).
FigureBundle build_fig3();

/// Fig. 4: DYN FrameID assignment and segment length vs response time of
/// m2 — (a) m1/m3 share FrameID 1, (b) unique FrameIDs, (c) unique
/// FrameIDs + enlarged DYN segment.  Expected strict ordering
/// R2(a) > R2(b) > R2(c).
FigureBundle build_fig4();

/// Fig. 7: a 45-task system with 10 ST and 20 DYN messages whose DYN
/// response times are U-shaped in the DYN segment length.  The bundle's
/// single config carries the fixed ST segment; the bench sweeps
/// minislot_count.
FigureBundle build_fig7();

}  // namespace flexopt
