#pragma once

/// \file scenario.hpp
/// The generator family behind the scenario campaign subsystem: one
/// ScenarioSpec selects a topology family (how task-graph edges are wired)
/// and a traffic mix (which share of graphs is time-triggered) on top of
/// the Section 7 sizing knobs of SyntheticSpec.  `generate_synthetic` is
/// the RandomDag/Mixed member of this family; campaigns sweep the other
/// members to stress optimizers on structurally different populations.

#include <string_view>

#include "flexopt/gen/synthetic.hpp"
#include "flexopt/model/cluster_backend.hpp"

namespace flexopt {

/// How the tasks of each graph are wired together.
enum class Topology {
  /// Every non-root task picks 1-2 random predecessors (the Section 7
  /// recipe; graphs stay connected, acyclic and single-source).
  RandomDag,
  /// A single chain t0 -> t1 -> ... -> tk; end-to-end latency is the sum of
  /// every hop, so deadlines bite hardest here.
  Pipeline,
  /// t0 fans out to the middle tasks which all fan into the last task
  /// (sensor-fusion shape); maximises parallel releases into the bus.
  FanInFanOut,
  /// Chain edges like Pipeline, but task placement alternates through a
  /// designated gateway node (node 0) so nearly every hop crosses nodes —
  /// the message-heavy worst case for bus optimisation.
  GatewayHeavy,
  /// A gateway-connected cluster network (ScenarioSpec::clusters buses in a
  /// chain, one gateway per adjacent pair): compute nodes are spread
  /// round-robin over the clusters, an `inter_cluster_share` of the graphs
  /// alternates its chain between two clusters so its messages hop through
  /// gateways, and the rest stays cluster-local.  Cross graphs are always
  /// event-triggered (gateway forwarding is ET-only, see application.hpp).
  MultiCluster,
};

/// Which share of the graphs is time-triggered (SCS tasks + ST messages).
enum class TrafficMix {
  Mixed,    ///< honour SyntheticSpec::tt_share
  StOnly,   ///< every graph time-triggered (tt_share = 1)
  DynOnly,  ///< every graph event-triggered (tt_share = 0)
};

/// One member of the generator family: Section 7 sizing knobs plus the
/// structural axes the campaign subsystem sweeps.
struct ScenarioSpec {
  SyntheticSpec base;
  Topology topology = Topology::RandomDag;
  TrafficMix traffic = TrafficMix::Mixed;
  /// MultiCluster only: number of clusters (validated to 2..4; the other
  /// families ignore it and stay single-bus).
  int clusters = 2;
  /// MultiCluster only: share of graphs whose chain crosses two clusters.
  double inter_cluster_share = 0.25;
  /// MultiCluster only: which communication backend each cluster speaks
  /// (see backend_for_cluster).  The single-bus families are FlexRay by
  /// construction; generate_scenario rejects tsn/mixed for them.  The
  /// assignment perturbs no rng draw, so `flexray` reproduces the
  /// pre-backend applications bit-identically.
  BackendMix backend = BackendMix::Flexray;
};

/// Stable spelling used in spec files, CSV/JSON output and CLI errors.
[[nodiscard]] const char* to_string(Topology topology);
[[nodiscard]] const char* to_string(TrafficMix traffic);

/// Parses the to_string spelling plus short aliases ("random", "fan",
/// "st", "dyn"); errors list the valid set.
[[nodiscard]] Expected<Topology> parse_topology(std::string_view text);
[[nodiscard]] Expected<TrafficMix> parse_traffic_mix(std::string_view text);

/// Validates the sizing knobs shared by every family member: counts,
/// divisibility, non-empty positive period choices, tt_share in [0,1],
/// utilisation bands with min <= max, deadline_factor > 0.  Returns the
/// first violation.
[[nodiscard]] Expected<bool> validate_spec(const SyntheticSpec& spec);

/// Generates a finalized application for one family member.  The traffic
/// mix overrides `spec.base.tt_share` before generation; identical specs
/// and seeds produce bit-identical applications.
[[nodiscard]] Expected<Application> generate_scenario(const ScenarioSpec& spec,
                                                      const BusParams& params);

}  // namespace flexopt
