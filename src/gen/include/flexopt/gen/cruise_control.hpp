#pragma once

/// \file cruise_control.hpp
/// The Section 7 real-life case study: a vehicle cruise controller with 54
/// tasks and 26 messages in 4 task graphs (2 time-triggered, 2
/// event-triggered) mapped over 5 nodes.
///
/// The authors' industrial model is not public; this is a synthetic
/// reconstruction with exactly the published topology (task/message/graph/
/// node counts, TT/ET split) structured as sensing -> filtering -> control
/// -> actuation pipelines, which exercises the same code paths
/// (DESIGN.md, substitution table).

#include "flexopt/flexray/params.hpp"
#include "flexopt/model/application.hpp"

namespace flexopt {

/// Builds the finalized cruise-controller application.  Guarantees:
/// 54 tasks, 26 messages (13 ST + 13 DYN), 4 graphs, 5 nodes.
Application build_cruise_controller();

/// 10 Mbit/s parameters used for the case study (1 us macrotick, 5 us
/// minislots, full FlexRay frame overhead).
BusParams cruise_controller_params();

}  // namespace flexopt
