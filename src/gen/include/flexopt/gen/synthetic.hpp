#pragma once

/// \file synthetic.hpp
/// Synthetic system generator reproducing the experimental setup of
/// Section 7: n nodes with 10 tasks each, task graphs of 5 tasks, half of
/// the graphs time-triggered and half event-triggered, node utilisation
/// scaled into [30%, 60%] and bus utilisation into [10%, 70%].

#include <cstdint>

#include "flexopt/flexray/params.hpp"
#include "flexopt/model/application.hpp"
#include "flexopt/util/expected.hpp"

namespace flexopt {

struct SyntheticSpec {
  int nodes = 5;
  int tasks_per_node = 10;
  int tasks_per_graph = 5;
  /// Fraction of graphs that are time-triggered (SCS tasks + ST messages).
  double tt_share = 0.5;
  /// Per-node processor utilisation target range.  The paper draws
  /// utilisations in [0.30, 0.60]; our holistic analysis is more
  /// conservative than the exact variant of [14] (full-cycle sigma per DYN
  /// hop, sliding-window SCS interference), so the default band is shifted
  /// down to land the benchmark suite in the same mixed-feasibility regime
  /// the paper reports (see DESIGN.md, substitutions).
  double node_util_min = 0.25;
  double node_util_max = 0.45;
  /// Bus utilisation target range (sum of frame duration / period).
  /// Paper band: [0.10, 0.70]; shifted down for the same reason.
  double bus_util_min = 0.10;
  double bus_util_max = 0.40;
  /// Graph periods are drawn from this set (ns); keep them harmonic so the
  /// hyper-period stays small.
  std::vector<Time> period_choices{timeunits::ms(20), timeunits::ms(40), timeunits::ms(80)};
  /// Deadline = period * deadline_factor.
  double deadline_factor = 1.0;
  /// Upper clamp for the bus-utilisation size scaling (FlexRay payloads go
  /// to 254 bytes; automotive signals are usually far smaller, and giant
  /// frames inflate the minimum bus cycle).
  int max_message_bytes = 32;
  std::uint64_t seed = 1;
};

/// Generates a finalized application following the Section 7 recipe — the
/// RandomDag/Mixed member of the generator family in
/// flexopt/gen/scenario.hpp.  `params` supplies the frame cost model used
/// for bus-utilisation scaling.  Rejects malformed specs (empty or
/// non-positive period_choices, tt_share outside [0,1], inverted
/// utilisation bands, non-positive deadline_factor) with an error instead
/// of undefined behaviour.
Expected<Application> generate_synthetic(const SyntheticSpec& spec, const BusParams& params);

/// Realised (post-scaling) bus utilisation of an application, for test
/// assertions and bench reporting.  Sums over every message, so for
/// multi-cluster applications it is the sum across all buses — use the
/// per-cluster overload to compare against a per-bus utilisation band.
double bus_utilization(const Application& app, const BusParams& params);

/// Realised utilisation of one cluster's bus: messages attributed to their
/// sender's home cluster (their first hop; the relay hops a SystemModel
/// projection adds downstream are not counted).
double bus_utilization(const Application& app, const BusParams& params, ClusterId cluster);

}  // namespace flexopt
