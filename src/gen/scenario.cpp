#include "flexopt/gen/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "flexopt/gen/placement.hpp"
#include "flexopt/util/rng.hpp"

namespace flexopt {
namespace {

std::string idx_name(const char* prefix, std::size_t i) {
  return std::string(prefix) + std::to_string(i);
}

/// Task construction shared by every family member: placeholder WCET drawn
/// from the rng (rescaled to the utilisation targets afterwards) and
/// deadline-monotonic priorities — shorter-period graphs preempt longer
/// ones; within a graph, upstream tasks run first (they gate the chain's
/// jitter).  Do not reorder the rng draws: identical spec + seed must stay
/// bit-identical across family members.
TaskId add_family_task(Application& app, GraphId graph, NodeId node, int i,
                       std::size_t period_rank, bool tt, Rng& rng) {
  const Time wcet = timeunits::us(rng.uniform_int(200, 1200));
  const int priority = static_cast<int>(period_rank) * 8 + std::min(i, 7);
  return app.add_task(graph, idx_name("t", index_of(graph)) + "_" + std::to_string(i), node,
                      wcet, tt ? TaskPolicy::Scs : TaskPolicy::Fps, priority);
}

/// Wires predecessor p -> consumer i: a direct dependency when both sit on
/// the same node, a bus message otherwise (intra-node communication is
/// folded into WCETs per Section 4).
void connect_family_tasks(Application& app, GraphId graph, const std::vector<TaskId>& tasks,
                          int p, int i, std::size_t period_rank, bool tt, Rng& rng) {
  const TaskId from = tasks[static_cast<std::size_t>(p)];
  const TaskId to = tasks[static_cast<std::size_t>(i)];
  if (app.task(from).node == app.task(to).node) {
    app.add_dependency(from, to);
  } else {
    app.add_message(graph,
                    idx_name("m", index_of(graph)) + "_" + std::to_string(p) + "_" +
                        std::to_string(i),
                    from, to, /*size_bytes=*/static_cast<int>(rng.uniform_int(2, 16)),
                    tt ? MessageClass::Static : MessageClass::Dynamic,
                    /*priority=*/static_cast<int>(period_rank) * 8 + std::min(i, 7));
  }
}

/// Graph/task construction of the MultiCluster family: `clusters` buses in
/// a chain (gateway GWj bridges clusters j and j+1), compute nodes spread
/// round-robin, an inter_cluster_share of the graphs alternating its chain
/// between two clusters (possibly non-adjacent — routes then take several
/// gateway hops).  WCET/size scaling happens in the shared tail of
/// generate_scenario.
Expected<Application> build_multicluster(const ScenarioSpec& scenario,
                                         const SyntheticSpec& spec, Rng& rng) {
  const int K = scenario.clusters;
  if (K < 2 || K > 4) {
    return make_error("multicluster: clusters must be in [2, 4]");
  }
  if (!(scenario.inter_cluster_share >= 0.0) || !(scenario.inter_cluster_share <= 1.0) ||
      !std::isfinite(scenario.inter_cluster_share)) {
    return make_error("multicluster: inter_cluster_share must be in [0, 1]");
  }
  if (spec.nodes < K) {
    return make_error("multicluster: need at least one compute node per cluster");
  }

  Application app;
  std::vector<std::vector<NodeId>> cluster_nodes(static_cast<std::size_t>(K));
  for (int n = 0; n < spec.nodes; ++n) {
    const NodeId id = app.add_node(idx_name("N", static_cast<std::size_t>(n)));
    const std::size_t c = static_cast<std::size_t>(n % K);
    app.set_node_cluster(id, static_cast<ClusterId>(static_cast<std::uint32_t>(c)));
    cluster_nodes[c].push_back(id);
  }
  for (int j = 0; j + 1 < K; ++j) {
    const NodeId gw = app.add_node(idx_name("GW", static_cast<std::size_t>(j)));
    app.set_node_cluster(gw, static_cast<ClusterId>(static_cast<std::uint32_t>(j)));
    app.add_gateway(gw, {static_cast<ClusterId>(static_cast<std::uint32_t>(j + 1))});
  }
  // Backend axis: a pure declaration, no rng draw — `flexray` keeps every
  // pre-backend application bit-identical.
  for (int j = 0; j < K; ++j) {
    app.set_cluster_backend(static_cast<ClusterId>(static_cast<std::uint32_t>(j)),
                            backend_for_cluster(scenario.backend, static_cast<std::size_t>(j)));
  }

  const int total_tasks = spec.nodes * spec.tasks_per_node;
  const int graph_count = total_tasks / spec.tasks_per_graph;
  const int cross_graphs = std::clamp(
      static_cast<int>(std::lround(graph_count * scenario.inter_cluster_share)), 0,
      graph_count);
  const int intra_graphs = graph_count - cross_graphs;
  const int tt_graphs =
      std::clamp(static_cast<int>(std::lround(intra_graphs * spec.tt_share)), 0, intra_graphs);

  ClusterPlacer placer(cluster_nodes, spec.tasks_per_node);
  for (int g = 0; g < graph_count; ++g) {
    // Cross graphs are event-triggered end to end: gateway relays are FPS
    // tasks and relay hops DYN messages, so a TT chain cannot cross buses.
    const bool cross = g >= intra_graphs;
    const bool tt = !cross && g < tt_graphs;
    const std::size_t period_rank = rng.index(spec.period_choices.size());
    const Time period = spec.period_choices[period_rank];
    const Time deadline =
        static_cast<Time>(std::llround(static_cast<double>(period) * spec.deadline_factor));
    const GraphId graph = app.add_graph(
        idx_name(cross ? "GX" : tt ? "GT" : "GE", static_cast<std::size_t>(g)), period,
        deadline);

    // Home cluster round-robin (keeps every cluster populated); the cross
    // partner is any other cluster, so multi-hop routes get exercised too.
    const std::size_t home = static_cast<std::size_t>(g % K);
    const std::size_t partner =
        cross ? (home + 1 + rng.index(static_cast<std::size_t>(K - 1))) %
                    static_cast<std::size_t>(K)
              : home;

    std::vector<TaskId> tasks;
    tasks.reserve(static_cast<std::size_t>(spec.tasks_per_graph));
    for (int i = 0; i < spec.tasks_per_graph; ++i) {
      const std::size_t cluster = i % 2 == 1 ? partner : home;
      tasks.push_back(add_family_task(app, graph, placer.place(cluster), i, period_rank, tt,
                                      rng));
    }
    for (int i = 1; i < spec.tasks_per_graph; ++i) {
      connect_family_tasks(app, graph, tasks, i - 1, i, period_rank, tt, rng);
    }
  }
  return app;
}

}  // namespace

const char* to_string(Topology topology) {
  switch (topology) {
    case Topology::RandomDag: return "random-dag";
    case Topology::Pipeline: return "pipeline";
    case Topology::FanInFanOut: return "fan-in-out";
    case Topology::GatewayHeavy: return "gateway";
    case Topology::MultiCluster: return "multicluster";
  }
  return "?";
}

const char* to_string(TrafficMix traffic) {
  switch (traffic) {
    case TrafficMix::Mixed: return "mixed";
    case TrafficMix::StOnly: return "st-only";
    case TrafficMix::DynOnly: return "dyn-only";
  }
  return "?";
}

Expected<Topology> parse_topology(std::string_view text) {
  if (text == "random-dag" || text == "random") return Topology::RandomDag;
  if (text == "pipeline" || text == "chain") return Topology::Pipeline;
  if (text == "fan-in-out" || text == "fan") return Topology::FanInFanOut;
  if (text == "gateway" || text == "gateway-heavy") return Topology::GatewayHeavy;
  if (text == "multicluster" || text == "multi-cluster") return Topology::MultiCluster;
  return make_error("unknown topology '" + std::string(text) +
                    "' (expected random-dag, pipeline, fan-in-out, gateway or multicluster)");
}

Expected<TrafficMix> parse_traffic_mix(std::string_view text) {
  if (text == "mixed") return TrafficMix::Mixed;
  if (text == "st-only" || text == "st") return TrafficMix::StOnly;
  if (text == "dyn-only" || text == "dyn") return TrafficMix::DynOnly;
  return make_error("unknown traffic mix '" + std::string(text) +
                    "' (expected mixed, st-only or dyn-only)");
}

Expected<bool> validate_spec(const SyntheticSpec& spec) {
  if (spec.nodes < 2) return make_error("synthetic: need at least 2 nodes");
  if (spec.tasks_per_node < 1 || spec.tasks_per_graph < 2) {
    return make_error("synthetic: invalid task counts");
  }
  // 64-bit product: large-but-positive counts must validate, not overflow.
  const long long total_tasks =
      static_cast<long long>(spec.nodes) * static_cast<long long>(spec.tasks_per_node);
  if (total_tasks > 1'000'000) {
    return make_error("synthetic: nodes * tasks_per_node must be <= 1000000");
  }
  if (total_tasks % spec.tasks_per_graph != 0) {
    return make_error("synthetic: tasks_per_graph must divide nodes * tasks_per_node");
  }
  if (spec.period_choices.empty()) {
    return make_error("synthetic: period_choices must not be empty");
  }
  for (const Time p : spec.period_choices) {
    if (p <= 0) return make_error("synthetic: period_choices must be positive");
  }
  if (spec.tt_share < 0.0 || spec.tt_share > 1.0 || !std::isfinite(spec.tt_share)) {
    return make_error("synthetic: tt_share must be in [0, 1]");
  }
  if (!(spec.node_util_min > 0.0) || spec.node_util_min > spec.node_util_max) {
    return make_error("synthetic: need 0 < node_util_min <= node_util_max");
  }
  if (spec.bus_util_min < 0.0 || spec.bus_util_min > spec.bus_util_max) {
    return make_error("synthetic: need 0 <= bus_util_min <= bus_util_max");
  }
  if (!(spec.deadline_factor > 0.0)) {
    return make_error("synthetic: deadline_factor must be > 0");
  }
  if (spec.max_message_bytes < 1) {
    return make_error("synthetic: max_message_bytes must be >= 1");
  }
  return true;
}

Expected<Application> generate_scenario(const ScenarioSpec& scenario, const BusParams& params) {
  SyntheticSpec spec = scenario.base;
  switch (scenario.traffic) {
    case TrafficMix::Mixed: break;
    case TrafficMix::StOnly: spec.tt_share = 1.0; break;
    case TrafficMix::DynOnly: spec.tt_share = 0.0; break;
  }
  if (auto valid = validate_spec(spec); !valid.ok()) return valid.error();
  if (scenario.backend != BackendMix::Flexray &&
      scenario.topology != Topology::MultiCluster) {
    return make_error(std::string("backend '") + to_string(scenario.backend) +
                      "' requires the multicluster topology (the single-bus families are "
                      "FlexRay by construction)");
  }

  const int total_tasks = spec.nodes * spec.tasks_per_node;
  const int graph_count = total_tasks / spec.tasks_per_graph;
  Rng rng(spec.seed);

  Application app;
  if (scenario.topology == Topology::MultiCluster) {
    auto built = build_multicluster(scenario, spec, rng);
    if (!built.ok()) return built.error();
    app = std::move(built).value();
  } else {
    for (int n = 0; n < spec.nodes; ++n) {
      app.add_node(idx_name("N", static_cast<std::size_t>(n)));
    }

    // Node assignment: exactly tasks_per_node tasks per node.  The random
    // families interleave placement by shuffling; GatewayHeavy places
    // deterministically so chain hops alternate through the gateway.
    std::vector<NodeId> slots;
    GatewayPlacer gateway(spec.nodes, spec.tasks_per_node);
    if (scenario.topology != Topology::GatewayHeavy) {
      slots.reserve(static_cast<std::size_t>(total_tasks));
      for (int n = 0; n < spec.nodes; ++n) {
        for (int k = 0; k < spec.tasks_per_node; ++k) slots.push_back(static_cast<NodeId>(n));
      }
      rng.shuffle(slots);
    }

    // tt_share is validated to [0,1]; the clamp also shields against
    // rounding at the interval ends.
    const int tt_graphs = std::clamp(static_cast<int>(std::lround(graph_count * spec.tt_share)),
                                     0, graph_count);
    std::size_t slot_cursor = 0;

    for (int g = 0; g < graph_count; ++g) {
      const bool tt = g < tt_graphs;
      const std::size_t period_rank = rng.index(spec.period_choices.size());
      const Time period = spec.period_choices[period_rank];
      const Time deadline = static_cast<Time>(
          std::llround(static_cast<double>(period) * spec.deadline_factor));
      const GraphId graph = app.add_graph(
          idx_name(tt ? "GT" : "GE", static_cast<std::size_t>(g)), period, deadline);

      std::vector<TaskId> tasks;
      tasks.reserve(static_cast<std::size_t>(spec.tasks_per_graph));
      for (int i = 0; i < spec.tasks_per_graph; ++i) {
        const NodeId node = scenario.topology == Topology::GatewayHeavy ? gateway.place(i)
                                                                        : slots[slot_cursor++];
        tasks.push_back(add_family_task(app, graph, node, i, period_rank, tt, rng));
      }

      auto connect = [&](int p, int i) {
        connect_family_tasks(app, graph, tasks, p, i, period_rank, tt, rng);
      };

      switch (scenario.topology) {
        case Topology::RandomDag:
          // Every non-root picks 1-2 predecessors among earlier tasks
          // (keeps the graph connected & acyclic; task 0 is the single
          // source).
          for (int i = 1; i < spec.tasks_per_graph; ++i) {
            const int pred_count = rng.chance(0.3) && i >= 2 ? 2 : 1;
            std::vector<int> preds;
            while (static_cast<int>(preds.size()) < pred_count) {
              const int p = static_cast<int>(rng.uniform_int(0, i - 1));
              if (std::find(preds.begin(), preds.end(), p) == preds.end()) preds.push_back(p);
            }
            for (const int p : preds) connect(p, i);
          }
          break;
        case Topology::Pipeline:
        case Topology::GatewayHeavy:
          for (int i = 1; i < spec.tasks_per_graph; ++i) connect(i - 1, i);
          break;
        case Topology::FanInFanOut:
          if (spec.tasks_per_graph == 2) {
            connect(0, 1);
          } else {
            for (int i = 1; i < spec.tasks_per_graph - 1; ++i) {
              connect(0, i);
              connect(i, spec.tasks_per_graph - 1);
            }
          }
          break;
        case Topology::MultiCluster:
          break;  // handled above
      }
    }
  }

  // --- scale WCETs to the per-node utilisation targets --------------------
  for (int n = 0; n < spec.nodes; ++n) {
    const double target = rng.uniform_real(spec.node_util_min, spec.node_util_max);
    const double current = app.node_utilization(static_cast<NodeId>(n));
    if (current <= 0.0) continue;
    const double factor = target / current;
    for (std::uint32_t t = 0; t < app.task_count(); ++t) {
      if (index_of(app.tasks()[t].node) != static_cast<std::uint32_t>(n)) continue;
      // Rebuild the task WCET in place through the public API surface:
      // Application exposes tasks() immutably, so scaling happens via a
      // dedicated mutator.
      const Time scaled = std::max<Time>(
          timeunits::us(10),
          static_cast<Time>(std::llround(static_cast<double>(app.tasks()[t].wcet) * factor)));
      app.set_task_wcet(static_cast<TaskId>(t), scaled);
    }
  }

  // --- scale message sizes to the bus utilisation target ------------------
  if (app.message_count() > 0 && scenario.topology == Topology::MultiCluster) {
    // Each FlexRay bus must hit the utilisation band individually — a
    // system-wide sum would load every bus at roughly band/clusters.
    // Messages are attributed to their sender's cluster (the first hop's
    // bus; the relay hops the projection adds downstream load their buses
    // slightly on top).
    auto message_cluster = [&](std::uint32_t m) {
      return index_of(app.cluster_of(app.messages()[m].sender));
    };
    for (int c = 0; c < scenario.clusters; ++c) {
      const ClusterId cluster = static_cast<ClusterId>(static_cast<std::uint32_t>(c));
      const double target = rng.uniform_real(spec.bus_util_min, spec.bus_util_max);
      for (int pass = 0; pass < 2; ++pass) {
        const double current = bus_utilization(app, params, cluster);
        if (current <= 0.0) break;
        const double factor = target / current;
        for (std::uint32_t m = 0; m < app.message_count(); ++m) {
          if (message_cluster(m) != static_cast<std::uint32_t>(c)) continue;
          const int scaled = std::clamp(
              static_cast<int>(std::lround(app.messages()[m].size_bytes * factor)), 1,
              spec.max_message_bytes);
          app.set_message_size(static_cast<MessageId>(m), scaled);
        }
      }
    }
  } else if (app.message_count() > 0) {
    const double target = rng.uniform_real(spec.bus_util_min, spec.bus_util_max);
    // Two proportional passes: frame overhead makes utilisation affine in
    // the payload size, so one pass under/overshoots slightly.
    for (int pass = 0; pass < 2; ++pass) {
      const double current = bus_utilization(app, params);
      if (current <= 0.0) break;
      const double factor = target / current;
      for (std::uint32_t m = 0; m < app.message_count(); ++m) {
        const int scaled = std::clamp(
            static_cast<int>(std::lround(app.messages()[m].size_bytes * factor)), 1,
            spec.max_message_bytes);
        app.set_message_size(static_cast<MessageId>(m), scaled);
      }
    }
  }

  auto fin = app.finalize();
  if (!fin.ok()) return fin.error();
  return app;
}

}  // namespace flexopt
