#include "flexopt/gen/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "flexopt/util/rng.hpp"

namespace flexopt {
namespace {

std::string idx_name(const char* prefix, std::size_t i) {
  return std::string(prefix) + std::to_string(i);
}

/// Deterministic task placement for GatewayHeavy: odd chain positions go to
/// the gateway (node 0) while it has capacity, even positions to the
/// fullest non-gateway node — so consecutive chain hops land on different
/// nodes and almost every edge becomes a bus message.  Keeps the "exactly
/// tasks_per_node tasks per node" invariant of the family.
class GatewayPlacer {
 public:
  GatewayPlacer(int nodes, int tasks_per_node)
      : remaining_(static_cast<std::size_t>(nodes), tasks_per_node) {}

  NodeId place(int chain_position) {
    const bool want_gateway = chain_position % 2 == 1;
    if (want_gateway && remaining_[0] > 0) {
      --remaining_[0];
      return static_cast<NodeId>(0);
    }
    std::size_t best = 0;
    for (std::size_t n = 1; n < remaining_.size(); ++n) {
      if (remaining_[n] > remaining_[best] || (best == 0 && remaining_[n] > 0)) best = n;
    }
    if (remaining_[best] == 0) best = 0;  // only the gateway has slots left
    --remaining_[best];
    return static_cast<NodeId>(static_cast<std::uint32_t>(best));
  }

 private:
  std::vector<int> remaining_;
};

}  // namespace

const char* to_string(Topology topology) {
  switch (topology) {
    case Topology::RandomDag: return "random-dag";
    case Topology::Pipeline: return "pipeline";
    case Topology::FanInFanOut: return "fan-in-out";
    case Topology::GatewayHeavy: return "gateway";
  }
  return "?";
}

const char* to_string(TrafficMix traffic) {
  switch (traffic) {
    case TrafficMix::Mixed: return "mixed";
    case TrafficMix::StOnly: return "st-only";
    case TrafficMix::DynOnly: return "dyn-only";
  }
  return "?";
}

Expected<Topology> parse_topology(std::string_view text) {
  if (text == "random-dag" || text == "random") return Topology::RandomDag;
  if (text == "pipeline" || text == "chain") return Topology::Pipeline;
  if (text == "fan-in-out" || text == "fan") return Topology::FanInFanOut;
  if (text == "gateway" || text == "gateway-heavy") return Topology::GatewayHeavy;
  return make_error("unknown topology '" + std::string(text) +
                    "' (expected random-dag, pipeline, fan-in-out or gateway)");
}

Expected<TrafficMix> parse_traffic_mix(std::string_view text) {
  if (text == "mixed") return TrafficMix::Mixed;
  if (text == "st-only" || text == "st") return TrafficMix::StOnly;
  if (text == "dyn-only" || text == "dyn") return TrafficMix::DynOnly;
  return make_error("unknown traffic mix '" + std::string(text) +
                    "' (expected mixed, st-only or dyn-only)");
}

Expected<bool> validate_spec(const SyntheticSpec& spec) {
  if (spec.nodes < 2) return make_error("synthetic: need at least 2 nodes");
  if (spec.tasks_per_node < 1 || spec.tasks_per_graph < 2) {
    return make_error("synthetic: invalid task counts");
  }
  // 64-bit product: large-but-positive counts must validate, not overflow.
  const long long total_tasks =
      static_cast<long long>(spec.nodes) * static_cast<long long>(spec.tasks_per_node);
  if (total_tasks > 1'000'000) {
    return make_error("synthetic: nodes * tasks_per_node must be <= 1000000");
  }
  if (total_tasks % spec.tasks_per_graph != 0) {
    return make_error("synthetic: tasks_per_graph must divide nodes * tasks_per_node");
  }
  if (spec.period_choices.empty()) {
    return make_error("synthetic: period_choices must not be empty");
  }
  for (const Time p : spec.period_choices) {
    if (p <= 0) return make_error("synthetic: period_choices must be positive");
  }
  if (spec.tt_share < 0.0 || spec.tt_share > 1.0 || !std::isfinite(spec.tt_share)) {
    return make_error("synthetic: tt_share must be in [0, 1]");
  }
  if (!(spec.node_util_min > 0.0) || spec.node_util_min > spec.node_util_max) {
    return make_error("synthetic: need 0 < node_util_min <= node_util_max");
  }
  if (spec.bus_util_min < 0.0 || spec.bus_util_min > spec.bus_util_max) {
    return make_error("synthetic: need 0 <= bus_util_min <= bus_util_max");
  }
  if (!(spec.deadline_factor > 0.0)) {
    return make_error("synthetic: deadline_factor must be > 0");
  }
  if (spec.max_message_bytes < 1) {
    return make_error("synthetic: max_message_bytes must be >= 1");
  }
  return true;
}

Expected<Application> generate_scenario(const ScenarioSpec& scenario, const BusParams& params) {
  SyntheticSpec spec = scenario.base;
  switch (scenario.traffic) {
    case TrafficMix::Mixed: break;
    case TrafficMix::StOnly: spec.tt_share = 1.0; break;
    case TrafficMix::DynOnly: spec.tt_share = 0.0; break;
  }
  if (auto valid = validate_spec(spec); !valid.ok()) return valid.error();

  const int total_tasks = spec.nodes * spec.tasks_per_node;
  const int graph_count = total_tasks / spec.tasks_per_graph;
  Rng rng(spec.seed);

  Application app;
  for (int n = 0; n < spec.nodes; ++n) app.add_node(idx_name("N", static_cast<std::size_t>(n)));

  // Node assignment: exactly tasks_per_node tasks per node.  The random
  // families interleave placement by shuffling; GatewayHeavy places
  // deterministically so chain hops alternate through the gateway.
  std::vector<NodeId> slots;
  GatewayPlacer gateway(spec.nodes, spec.tasks_per_node);
  if (scenario.topology != Topology::GatewayHeavy) {
    slots.reserve(static_cast<std::size_t>(total_tasks));
    for (int n = 0; n < spec.nodes; ++n) {
      for (int k = 0; k < spec.tasks_per_node; ++k) slots.push_back(static_cast<NodeId>(n));
    }
    rng.shuffle(slots);
  }

  // tt_share is validated to [0,1]; the clamp also shields against rounding
  // at the interval ends.
  const int tt_graphs = std::clamp(static_cast<int>(std::lround(graph_count * spec.tt_share)),
                                   0, graph_count);
  std::size_t slot_cursor = 0;

  for (int g = 0; g < graph_count; ++g) {
    const bool tt = g < tt_graphs;
    const std::size_t period_rank = rng.index(spec.period_choices.size());
    const Time period = spec.period_choices[period_rank];
    const Time deadline = static_cast<Time>(
        std::llround(static_cast<double>(period) * spec.deadline_factor));
    const GraphId graph = app.add_graph(idx_name(tt ? "GT" : "GE", static_cast<std::size_t>(g)),
                                        period, deadline);

    std::vector<TaskId> tasks;
    tasks.reserve(static_cast<std::size_t>(spec.tasks_per_graph));
    for (int i = 0; i < spec.tasks_per_graph; ++i) {
      const NodeId node = scenario.topology == Topology::GatewayHeavy ? gateway.place(i)
                                                                      : slots[slot_cursor++];
      // Placeholder WCET; scaled to the utilisation target below.
      const Time wcet = timeunits::us(rng.uniform_int(200, 1200));
      // Deadline-monotonic priorities: shorter-period graphs preempt longer
      // ones; within a graph, upstream tasks run first (they gate the
      // chain's jitter).
      const int priority = static_cast<int>(period_rank) * 8 + std::min(i, 7);
      tasks.push_back(app.add_task(graph, idx_name("t", index_of(graph)) + "_" +
                                              std::to_string(i),
                                   node, wcet, tt ? TaskPolicy::Scs : TaskPolicy::Fps,
                                   priority));
    }

    // Wires predecessor p -> consumer i: a direct dependency when both sit
    // on the same node, a bus message otherwise (intra-node communication
    // is folded into WCETs per Section 4).
    auto connect = [&](int p, int i) {
      const TaskId from = tasks[static_cast<std::size_t>(p)];
      const TaskId to = tasks[static_cast<std::size_t>(i)];
      if (app.task(from).node == app.task(to).node) {
        app.add_dependency(from, to);
      } else {
        app.add_message(graph,
                        idx_name("m", index_of(graph)) + "_" + std::to_string(p) + "_" +
                            std::to_string(i),
                        from, to, /*size_bytes=*/static_cast<int>(rng.uniform_int(2, 16)),
                        tt ? MessageClass::Static : MessageClass::Dynamic,
                        /*priority=*/static_cast<int>(period_rank) * 8 + std::min(i, 7));
      }
    };

    switch (scenario.topology) {
      case Topology::RandomDag:
        // Every non-root picks 1-2 predecessors among earlier tasks (keeps
        // the graph connected & acyclic; task 0 is the single source).
        for (int i = 1; i < spec.tasks_per_graph; ++i) {
          const int pred_count = rng.chance(0.3) && i >= 2 ? 2 : 1;
          std::vector<int> preds;
          while (static_cast<int>(preds.size()) < pred_count) {
            const int p = static_cast<int>(rng.uniform_int(0, i - 1));
            if (std::find(preds.begin(), preds.end(), p) == preds.end()) preds.push_back(p);
          }
          for (const int p : preds) connect(p, i);
        }
        break;
      case Topology::Pipeline:
      case Topology::GatewayHeavy:
        for (int i = 1; i < spec.tasks_per_graph; ++i) connect(i - 1, i);
        break;
      case Topology::FanInFanOut:
        if (spec.tasks_per_graph == 2) {
          connect(0, 1);
        } else {
          for (int i = 1; i < spec.tasks_per_graph - 1; ++i) {
            connect(0, i);
            connect(i, spec.tasks_per_graph - 1);
          }
        }
        break;
    }
  }

  // --- scale WCETs to the per-node utilisation targets --------------------
  for (int n = 0; n < spec.nodes; ++n) {
    const double target = rng.uniform_real(spec.node_util_min, spec.node_util_max);
    const double current = app.node_utilization(static_cast<NodeId>(n));
    if (current <= 0.0) continue;
    const double factor = target / current;
    for (std::uint32_t t = 0; t < app.task_count(); ++t) {
      if (index_of(app.tasks()[t].node) != static_cast<std::uint32_t>(n)) continue;
      // Rebuild the task WCET in place through the public API surface:
      // Application exposes tasks() immutably, so scaling happens via a
      // dedicated mutator.
      const Time scaled = std::max<Time>(
          timeunits::us(10),
          static_cast<Time>(std::llround(static_cast<double>(app.tasks()[t].wcet) * factor)));
      app.set_task_wcet(static_cast<TaskId>(t), scaled);
    }
  }

  // --- scale message sizes to the bus utilisation target ------------------
  if (app.message_count() > 0) {
    const double target = rng.uniform_real(spec.bus_util_min, spec.bus_util_max);
    // Two proportional passes: frame overhead makes utilisation affine in
    // the payload size, so one pass under/overshoots slightly.
    for (int pass = 0; pass < 2; ++pass) {
      const double current = bus_utilization(app, params);
      if (current <= 0.0) break;
      const double factor = target / current;
      for (std::uint32_t m = 0; m < app.message_count(); ++m) {
        const int scaled = std::clamp(
            static_cast<int>(std::lround(app.messages()[m].size_bytes * factor)), 1,
            spec.max_message_bytes);
        app.set_message_size(static_cast<MessageId>(m), scaled);
      }
    }
  }

  auto fin = app.finalize();
  if (!fin.ok()) return fin.error();
  return app;
}

}  // namespace flexopt
