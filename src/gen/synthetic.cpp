#include "flexopt/gen/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "flexopt/util/rng.hpp"

namespace flexopt {
namespace {

std::string idx_name(const char* prefix, std::size_t i) {
  return std::string(prefix) + std::to_string(i);
}

}  // namespace

double bus_utilization(const Application& app, const BusParams& params) {
  double u = 0.0;
  for (const auto& m : app.messages()) {
    const Time duration = params.frame_duration(m.size_bytes);
    const Time period = app.graph(m.graph).period;
    u += static_cast<double>(duration) / static_cast<double>(period);
  }
  return u;
}

Expected<Application> generate_synthetic(const SyntheticSpec& spec, const BusParams& params) {
  if (spec.nodes < 2) return make_error("synthetic: need at least 2 nodes");
  if (spec.tasks_per_node < 1 || spec.tasks_per_graph < 2) {
    return make_error("synthetic: invalid task counts");
  }
  const int total_tasks = spec.nodes * spec.tasks_per_node;
  if (total_tasks % spec.tasks_per_graph != 0) {
    return make_error("synthetic: tasks_per_graph must divide nodes * tasks_per_node");
  }
  const int graph_count = total_tasks / spec.tasks_per_graph;
  Rng rng(spec.seed);

  Application app;
  for (int n = 0; n < spec.nodes; ++n) app.add_node(idx_name("N", static_cast<std::size_t>(n)));

  // Node assignment: exactly tasks_per_node tasks per node, randomly
  // interleaved across graphs.
  std::vector<NodeId> slots;
  slots.reserve(static_cast<std::size_t>(total_tasks));
  for (int n = 0; n < spec.nodes; ++n) {
    for (int k = 0; k < spec.tasks_per_node; ++k) slots.push_back(static_cast<NodeId>(n));
  }
  rng.shuffle(slots);

  const int tt_graphs = static_cast<int>(std::lround(graph_count * spec.tt_share));
  std::size_t slot_cursor = 0;

  for (int g = 0; g < graph_count; ++g) {
    const bool tt = g < tt_graphs;
    const std::size_t period_rank = rng.index(spec.period_choices.size());
    const Time period = spec.period_choices[period_rank];
    const Time deadline = static_cast<Time>(
        std::llround(static_cast<double>(period) * spec.deadline_factor));
    const GraphId graph = app.add_graph(idx_name(tt ? "GT" : "GE", static_cast<std::size_t>(g)),
                                        period, deadline);

    std::vector<TaskId> tasks;
    tasks.reserve(static_cast<std::size_t>(spec.tasks_per_graph));
    for (int i = 0; i < spec.tasks_per_graph; ++i) {
      const NodeId node = slots[slot_cursor++];
      // Placeholder WCET; scaled to the utilisation target below.
      const Time wcet = timeunits::us(rng.uniform_int(200, 1200));
      // Deadline-monotonic priorities: shorter-period graphs preempt longer
      // ones; within a graph, upstream tasks run first (they gate the
      // chain's jitter).
      const int priority = static_cast<int>(period_rank) * 8 + std::min(i, 7);
      tasks.push_back(app.add_task(graph, idx_name("t", index_of(graph)) + "_" +
                                              std::to_string(i),
                                   node, wcet, tt ? TaskPolicy::Scs : TaskPolicy::Fps,
                                   priority));
    }

    // Random DAG over the graph's tasks: every non-root picks 1-2
    // predecessors among earlier tasks (keeps the graph connected & acyclic;
    // task 0 is the single source).
    for (int i = 1; i < spec.tasks_per_graph; ++i) {
      const int pred_count = rng.chance(0.3) && i >= 2 ? 2 : 1;
      std::vector<int> preds;
      while (static_cast<int>(preds.size()) < pred_count) {
        const int p = static_cast<int>(rng.uniform_int(0, i - 1));
        if (std::find(preds.begin(), preds.end(), p) == preds.end()) preds.push_back(p);
      }
      for (const int p : preds) {
        const TaskId from = tasks[static_cast<std::size_t>(p)];
        const TaskId to = tasks[static_cast<std::size_t>(i)];
        if (app.task(from).node == app.task(to).node) {
          app.add_dependency(from, to);
        } else {
          app.add_message(graph,
                          idx_name("m", index_of(graph)) + "_" + std::to_string(p) + "_" +
                              std::to_string(i),
                          from, to, /*size_bytes=*/static_cast<int>(rng.uniform_int(2, 16)),
                          tt ? MessageClass::Static : MessageClass::Dynamic,
                          /*priority=*/static_cast<int>(period_rank) * 8 + std::min(i, 7));
        }
      }
    }
  }

  // --- scale WCETs to the per-node utilisation targets --------------------
  for (int n = 0; n < spec.nodes; ++n) {
    const double target = rng.uniform_real(spec.node_util_min, spec.node_util_max);
    const double current = app.node_utilization(static_cast<NodeId>(n));
    if (current <= 0.0) continue;
    const double factor = target / current;
    for (std::uint32_t t = 0; t < app.task_count(); ++t) {
      if (index_of(app.tasks()[t].node) != static_cast<std::uint32_t>(n)) continue;
      // Rebuild the task WCET in place through the public API surface:
      // Application exposes tasks() immutably, so scaling happens via a
      // dedicated mutator.
      const Time scaled = std::max<Time>(
          timeunits::us(10),
          static_cast<Time>(std::llround(static_cast<double>(app.tasks()[t].wcet) * factor)));
      app.set_task_wcet(static_cast<TaskId>(t), scaled);
    }
  }

  // --- scale message sizes to the bus utilisation target ------------------
  if (app.message_count() > 0) {
    const double target = rng.uniform_real(spec.bus_util_min, spec.bus_util_max);
    // Two proportional passes: frame overhead makes utilisation affine in
    // the payload size, so one pass under/overshoots slightly.
    for (int pass = 0; pass < 2; ++pass) {
      const double current = bus_utilization(app, params);
      if (current <= 0.0) break;
      const double factor = target / current;
      for (std::uint32_t m = 0; m < app.message_count(); ++m) {
        const int scaled = std::clamp(
            static_cast<int>(std::lround(app.messages()[m].size_bytes * factor)), 1,
            spec.max_message_bytes);
        app.set_message_size(static_cast<MessageId>(m), scaled);
      }
    }
  }

  auto fin = app.finalize();
  if (!fin.ok()) return fin.error();
  return app;
}

}  // namespace flexopt
