#include "flexopt/gen/synthetic.hpp"

#include "flexopt/gen/scenario.hpp"

namespace flexopt {

double bus_utilization(const Application& app, const BusParams& params) {
  double u = 0.0;
  for (const auto& m : app.messages()) {
    const Time period = app.graph(m.graph).period;
    // Degenerate (zero/negative-period) graphs contribute nothing rather
    // than dividing by zero; finalize() rejects them, but generators call
    // this on un-finalized applications mid-scaling.
    if (period <= 0) continue;
    const Time duration = params.frame_duration(m.size_bytes);
    u += static_cast<double>(duration) / static_cast<double>(period);
  }
  return u;
}

double bus_utilization(const Application& app, const BusParams& params, ClusterId cluster) {
  double u = 0.0;
  for (const auto& m : app.messages()) {
    if (app.cluster_of(m.sender) != cluster) continue;
    const Time period = app.graph(m.graph).period;
    if (period <= 0) continue;
    u += static_cast<double>(params.frame_duration(m.size_bytes)) /
         static_cast<double>(period);
  }
  return u;
}

Expected<Application> generate_synthetic(const SyntheticSpec& spec, const BusParams& params) {
  // The Section 7 recipe is the RandomDag/Mixed member of the scenario
  // generator family (flexopt/gen/scenario.hpp).
  ScenarioSpec scenario;
  scenario.base = spec;
  return generate_scenario(scenario, params);
}

}  // namespace flexopt
