#pragma once

/// \file params.hpp
/// Global FlexRay protocol parameters and spec limits.
///
/// Names follow the FlexRay 2.1 specification (gd* = global duration
/// parameters).  Spec limits enforced here are the ones the paper cites in
/// Section 6: at most 1023 static slots, at most 7994 minislots, bus cycle
/// at most 16 ms, static slot at most 661 macroticks, ST payload growing in
/// 2-byte (20 gdBit) increments.

#include "flexopt/util/time.hpp"

namespace flexopt {

/// Physical-layer frame cost model (Eq. 1 of the paper):
///   C_m = frame_size(m) / bus_speed
/// FlexRay encodes each payload byte in 10 bit-times (byte start sequence +
/// 8 data bits) and adds a fixed header/trailer/TSS overhead.  The didactic
/// figure reproductions zero the overhead so message "sizes" map 1:1 to the
/// paper's abstract time units.
struct FrameFormat {
  /// Fixed per-frame overhead in bit-times (TSS + FSS + header + CRC + FES).
  int overhead_bits = 110;
  /// Bit-times per payload byte (10 with the FlexRay byte start sequence).
  int bits_per_payload_byte = 10;
};

/// Immutable global bus parameters, fixed before bus-access optimisation.
struct BusParams {
  /// Duration of one bit on the bus; 100 ns at the standard 10 Mbit/s.
  Time gd_bit = 100;
  /// Macrotick: the protocol's coarse time unit (typically 1 us).
  Time gd_macrotick = timeunits::us(1);
  /// Minislot length (spec: 2..63 macroticks).
  Time gd_minislot = timeunits::us(5);
  FrameFormat frame;

  /// Communication time of a payload of `size_bytes` (Eq. 1).
  [[nodiscard]] Time frame_duration(int size_bytes) const {
    const auto bits =
        static_cast<std::int64_t>(frame.overhead_bits) +
        static_cast<std::int64_t>(frame.bits_per_payload_byte) * size_bytes;
    return bits * gd_bit;
  }

  /// Number of minislots a DYN frame of `size_bytes` occupies.
  [[nodiscard]] int frame_minislots(int size_bytes) const {
    return static_cast<int>(ceil_div(frame_duration(size_bytes), gd_minislot));
  }
};

/// FlexRay 2.1 protocol limits (Section 6 of the paper).
struct SpecLimits {
  static constexpr int kMaxStaticSlots = 1023;        // gdNumberOfStaticSlots max
  static constexpr int kMaxMinislots = 7994;          // gNumberOfMinislots max
  static constexpr Time kMaxCycle = timeunits::ms(16);  // gdCycle max
  static constexpr int kMaxStaticSlotMacroticks = 661;  // gdStaticSlot max
  /// ST payload grows in 2-byte increments = 20 bit-times.
  static constexpr int kPayloadStepBits = 20;
};

}  // namespace flexopt
