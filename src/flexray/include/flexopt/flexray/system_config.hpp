#pragma once

/// \file system_config.hpp
/// The decision variables of a multi-cluster system: one ClusterConfig per
/// cluster, indexed by cluster.  A ClusterConfig is the backend-tagged
/// configuration variant — a FlexRay BusConfig or a TSN TsnConfig — so the
/// cluster-generic layers (evaluator, optimizer, campaign) never commit to
/// one protocol.  The degenerate single-cluster SystemConfig wraps exactly
/// one FlexRay BusConfig and is what every pre-existing single-bus
/// front-end implicitly searches.

#include <utility>
#include <vector>

#include "flexopt/flexray/bus_config.hpp"
#include "flexopt/model/cluster_backend.hpp"

namespace flexopt {

/// Backend-tagged per-cluster configuration.  A plain struct rather than a
/// std::variant: only the payload selected by `kind` is meaningful, the
/// other stays default-constructed, and defaulted equality / trivial
/// hashing stay correct as long as configs are assigned whole (which every
/// optimizer move does).
struct ClusterConfig {
  ClusterBackendKind kind = ClusterBackendKind::FlexRay;
  /// FlexRay decision variables; meaningful iff kind == FlexRay.
  BusConfig flexray;
  /// TSN time-aware-shaper decision variables; meaningful iff kind == Tsn.
  TsnConfig tsn;

  [[nodiscard]] static ClusterConfig flexray_bus(BusConfig config) {
    ClusterConfig out;
    out.kind = ClusterBackendKind::FlexRay;
    out.flexray = std::move(config);
    return out;
  }

  [[nodiscard]] static ClusterConfig tsn_switch(TsnConfig config) {
    ClusterConfig out;
    out.kind = ClusterBackendKind::Tsn;
    out.tsn = std::move(config);
    return out;
  }

  friend bool operator==(const ClusterConfig&, const ClusterConfig&) = default;
};

struct SystemConfig {
  /// One candidate backend configuration per cluster; message-indexed
  /// vectors inside the payloads (frame_id, gates, et_priority) are indexed
  /// by the *local* MessageIds of that cluster's projected application (see
  /// flexopt/model/system_model.hpp).
  std::vector<ClusterConfig> clusters;

  [[nodiscard]] static SystemConfig single(BusConfig config) {
    SystemConfig out;
    out.clusters.push_back(ClusterConfig::flexray_bus(std::move(config)));
    return out;
  }

  [[nodiscard]] std::size_t cluster_count() const { return clusters.size(); }

  friend bool operator==(const SystemConfig&, const SystemConfig&) = default;
};

}  // namespace flexopt
