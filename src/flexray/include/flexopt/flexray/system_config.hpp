#pragma once

/// \file system_config.hpp
/// The decision variables of a multi-cluster system: one BusConfig per
/// FlexRay cluster, indexed by cluster.  The degenerate single-cluster
/// SystemConfig wraps exactly one BusConfig and is what every pre-existing
/// single-bus front-end implicitly searches.

#include <utility>
#include <vector>

#include "flexopt/flexray/bus_config.hpp"

namespace flexopt {

struct SystemConfig {
  /// One candidate bus configuration per cluster; frame_id vectors are
  /// indexed by the *local* MessageIds of that cluster's projected
  /// application (see flexopt/model/system_model.hpp).
  std::vector<BusConfig> clusters;

  [[nodiscard]] static SystemConfig single(BusConfig config) {
    SystemConfig out;
    out.clusters.push_back(std::move(config));
    return out;
  }

  [[nodiscard]] std::size_t cluster_count() const { return clusters.size(); }

  friend bool operator==(const SystemConfig&, const SystemConfig&) = default;
};

}  // namespace flexopt
