#pragma once

/// \file bus_config.hpp
/// A candidate FlexRay bus configuration — the decision variables of the
/// paper's optimisation problem (Section 6): ST slot count / length /
/// ownership, DYN segment length, and FrameID assignment of DYN messages.

#include <vector>

#include "flexopt/model/ids.hpp"
#include "flexopt/util/time.hpp"

namespace flexopt {

/// The six decision variables of Section 6.  A plain value type: optimisers
/// copy and mutate it freely; `BusLayout::build` validates it against an
/// application and the protocol limits.
struct BusConfig {
  /// (1)(2) Number and length of ST slots (gdNumberOfStaticSlots, gdStaticSlot).
  int static_slot_count = 0;
  Time static_slot_len = 0;
  /// (3) Owner node of each ST slot, size == static_slot_count.
  std::vector<NodeId> static_slot_owner;
  /// (4) DYN segment length in minislots (gNumberOfMinislots).
  int minislot_count = 0;
  /// (5)(6) FrameID per message, indexed by MessageId: 0 for ST messages,
  /// 1-based DYN slot number for DYN messages.  DYN slot ownership follows
  /// from the sender node of the message(s) with that FrameID.
  std::vector<int> frame_id;

  friend bool operator==(const BusConfig&, const BusConfig&) = default;
};

}  // namespace flexopt
