#pragma once

/// \file bus_layout.hpp
/// Validated, derived view of (Application, BusParams, BusConfig):
/// per-message communication times (Eq. 1), segment/cycle lengths, DYN slot
/// ownership, pLatestTx per node, and the interference sets hp(m) / lf(m) /
/// ms(m) of Section 5.1.  Analysis and simulation consume a BusLayout, never
/// a raw BusConfig.

#include <vector>

#include "flexopt/flexray/bus_config.hpp"
#include "flexopt/flexray/params.hpp"
#include "flexopt/model/application.hpp"
#include "flexopt/util/expected.hpp"

namespace flexopt {

class BusLayout {
 public:
  /// An empty layout: every accessor is meaningless until a successful
  /// assign().  Exists so the delta-evaluation hot path can keep one
  /// BusLayout per worker thread and rebuild it in place per candidate.
  BusLayout() = default;

  /// Validates `config` against the application and the FlexRay limits.
  /// Checks performed:
  ///  * slot/minislot counts and cycle length within SpecLimits;
  ///  * every node that sends ST messages owns at least one ST slot;
  ///  * ST slot long enough for the largest ST frame;
  ///  * every DYN message has a FrameID in [1, minislot_count];
  ///  * messages sharing a FrameID originate from the same node (a DYN slot
  ///    belongs to exactly one node);
  ///  * the largest DYN frame of every sending node fits in the DYN segment
  ///    (pLatestTx >= 1).
  static Expected<BusLayout> build(const Application& app, const BusParams& params,
                                   BusConfig config);

  /// In-place rebuild: identical validation and derived state to build(),
  /// but every member vector is refilled reusing its capacity, so
  /// re-assigning layouts of the same application performs zero heap
  /// allocations at steady state (error paths excepted).  On error the
  /// layout is unspecified and must be assigned again before use.
  Expected<bool> assign(const Application& app, const BusParams& params,
                        const BusConfig& config);

  // ---- cycle geometry ------------------------------------------------------
  [[nodiscard]] Time st_segment_len() const { return st_segment_len_; }
  [[nodiscard]] Time dyn_segment_len() const { return dyn_segment_len_; }
  [[nodiscard]] Time cycle_len() const { return st_segment_len_ + dyn_segment_len_; }
  /// Bus-relative start offset of static slot `slot` (0-based) in a cycle.
  [[nodiscard]] Time static_slot_start(int slot) const {
    return static_cast<Time>(slot) * config_.static_slot_len;
  }

  // ---- per-message quantities ---------------------------------------------
  /// Communication time C_m (Eq. 1), indexed by MessageId.
  [[nodiscard]] const std::vector<Time>& message_durations() const { return durations_; }
  [[nodiscard]] Time message_duration(MessageId m) const { return durations_[index_of(m)]; }
  /// Minislots occupied by a DYN message's frame (0 for ST messages).
  [[nodiscard]] int message_minislots(MessageId m) const { return minislots_[index_of(m)]; }
  /// Bus time a DYN frame occupies: whole minislots (>= C_m).  The receiver
  /// CHI exposes the payload at the end of the last occupied minislot, so
  /// DYN response times are computed with this instead of the raw C_m.
  [[nodiscard]] Time message_occupancy(MessageId m) const {
    return static_cast<Time>(minislots_[index_of(m)]) * params_.gd_minislot;
  }
  [[nodiscard]] int frame_id(MessageId m) const { return config_.frame_id[index_of(m)]; }

  // ---- DYN segment structure ----------------------------------------------
  /// Largest FrameID in use (the DYN slot counter only matters up to here).
  [[nodiscard]] int max_frame_id() const { return max_frame_id_; }
  /// Owner node of DYN slot `fid` (1-based); returns false if unowned.
  [[nodiscard]] bool frame_id_owner(int fid, NodeId* owner) const;
  /// pLatestTx of a node: the last 1-based minislot index at which the node
  /// may still begin a DYN transmission (its largest frame still fits).
  /// Equals minislot_count for nodes without DYN messages.
  [[nodiscard]] int p_latest_tx(NodeId node) const { return p_latest_tx_[index_of(node)]; }

  // ---- interference sets of Section 5.1 ------------------------------------
  /// hp(m): higher-priority messages sharing m's FrameID (same sender node).
  [[nodiscard]] std::vector<MessageId> hp(MessageId m) const;
  /// lf(m): DYN messages with a strictly lower FrameID than m's.
  [[nodiscard]] std::vector<MessageId> lf(MessageId m) const;
  /// |ms(m)|: number of DYN slots with lower FrameIDs (each costs at least
  /// one minislot per cycle even when unused).
  [[nodiscard]] int ms_count(MessageId m) const { return frame_id(m) - 1; }

  // ---- static segment structure ---------------------------------------------
  /// ST slot indices (0-based) owned by `node`, in cycle order.
  [[nodiscard]] const std::vector<int>& static_slots_of(NodeId node) const {
    return st_slots_of_node_[index_of(node)];
  }

  [[nodiscard]] const BusConfig& config() const { return config_; }
  [[nodiscard]] const BusParams& params() const { return params_; }
  [[nodiscard]] const Application& application() const { return *app_; }

 private:
  /// Shared tail of build()/assign(): validates config_ against *app_ and
  /// refills the derived members in place (capacity-reusing).
  Expected<bool> validate_and_derive();

  const Application* app_ = nullptr;
  BusParams params_;
  BusConfig config_;

  Time st_segment_len_ = 0;
  Time dyn_segment_len_ = 0;
  std::vector<Time> durations_;
  std::vector<int> minislots_;
  std::vector<int> p_latest_tx_;
  std::vector<std::vector<int>> st_slots_of_node_;
  /// frame id -> owner node index, or -1 when unowned; index 0 unused.
  std::vector<int> fid_owner_;
  int max_frame_id_ = 0;
};

}  // namespace flexopt
