#include "flexopt/flexray/bus_layout.hpp"

#include <algorithm>
#include <string>

namespace flexopt {

Expected<BusLayout> BusLayout::build(const Application& app, const BusParams& params,
                                     BusConfig config) {
  BusLayout layout;
  layout.app_ = &app;
  layout.params_ = params;
  layout.config_ = std::move(config);
  auto derived = layout.validate_and_derive();
  if (!derived.ok()) return derived.error();
  return layout;
}

Expected<bool> BusLayout::assign(const Application& app, const BusParams& params,
                                 const BusConfig& config) {
  app_ = &app;
  params_ = params;
  config_ = config;  // vector copy-assignments reuse capacity
  return validate_and_derive();
}

Expected<bool> BusLayout::validate_and_derive() {
  const Application& app = *app_;
  const BusParams& params = params_;
  const BusConfig& cfg = config_;

  if (!app.finalized()) return make_error("BusLayout: application not finalized");

  const auto& messages = app.messages();
  if (cfg.frame_id.size() != messages.size()) {
    return make_error("BusLayout: frame_id vector size mismatch");
  }
  if (cfg.static_slot_count < 0 || cfg.static_slot_count > SpecLimits::kMaxStaticSlots) {
    return make_error("BusLayout: static slot count outside [0, 1023]");
  }
  if (static_cast<int>(cfg.static_slot_owner.size()) != cfg.static_slot_count) {
    return make_error("BusLayout: static slot owner vector size mismatch");
  }
  if (cfg.minislot_count < 0 || cfg.minislot_count > SpecLimits::kMaxMinislots) {
    return make_error("BusLayout: minislot count outside [0, 7994]");
  }
  if (cfg.static_slot_count > 0) {
    if (cfg.static_slot_len <= 0) {
      return make_error("BusLayout: non-positive static slot length");
    }
    if (cfg.static_slot_len > SpecLimits::kMaxStaticSlotMacroticks * params.gd_macrotick) {
      return make_error("BusLayout: static slot longer than 661 macroticks");
    }
  }
  for (const NodeId owner : cfg.static_slot_owner) {
    if (index_of(owner) >= app.node_count()) {
      return make_error("BusLayout: slot owned by unknown node");
    }
  }

  st_segment_len_ = static_cast<Time>(cfg.static_slot_count) * cfg.static_slot_len;
  dyn_segment_len_ = static_cast<Time>(cfg.minislot_count) * params.gd_minislot;
  if (cycle_len() <= 0) return make_error("BusLayout: empty bus cycle");
  if (cycle_len() > SpecLimits::kMaxCycle) {
    return make_error("BusLayout: bus cycle exceeds 16 ms");
  }

  // Per-message durations and minislot footprints.
  durations_.resize(messages.size());
  minislots_.resize(messages.size());
  Time max_st_frame = 0;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    durations_[i] = params.frame_duration(messages[i].size_bytes);
    if (messages[i].cls == MessageClass::Dynamic) {
      minislots_[i] = params.frame_minislots(messages[i].size_bytes);
    } else {
      minislots_[i] = 0;
      max_st_frame = std::max(max_st_frame, durations_[i]);
    }
  }

  // Static segment: slot ownership per node; every ST sender needs a slot;
  // the largest ST frame must fit in one slot.  (The inner vectors are
  // cleared, never reassigned — their buffers survive re-assignment.)
  st_slots_of_node_.resize(app.node_count());
  for (auto& slots : st_slots_of_node_) slots.clear();
  for (int s = 0; s < cfg.static_slot_count; ++s) {
    st_slots_of_node_[index_of(cfg.static_slot_owner[static_cast<std::size_t>(s)])]
        .push_back(s);
  }
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (messages[i].cls != MessageClass::Static) continue;
    const NodeId sender_node = app.task(messages[i].sender).node;
    if (st_slots_of_node_[index_of(sender_node)].empty()) {
      return make_error("BusLayout: node '" + app.node(sender_node).name +
                        "' sends ST messages but owns no ST slot");
    }
  }
  if (max_st_frame > 0 && cfg.static_slot_len < max_st_frame) {
    return make_error("BusLayout: static slot shorter than the largest ST frame");
  }

  // Dynamic segment: FrameID sanity and slot ownership.
  fid_owner_.assign(static_cast<std::size_t>(cfg.minislot_count) + 1, -1);
  max_frame_id_ = 0;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const int fid = cfg.frame_id[i];
    if (messages[i].cls == MessageClass::Static) {
      if (fid != 0) return make_error("BusLayout: ST message with a DYN FrameID");
      continue;
    }
    if (fid < 1 || fid > cfg.minislot_count) {
      return make_error("BusLayout: DYN message '" + messages[i].name +
                        "' has FrameID outside [1, minislot_count]");
    }
    const int sender_node = static_cast<int>(index_of(app.task(messages[i].sender).node));
    int& owner = fid_owner_[static_cast<std::size_t>(fid)];
    if (owner == -1) {
      owner = sender_node;
    } else if (owner != sender_node) {
      return make_error("BusLayout: FrameID " + std::to_string(fid) +
                        " shared by messages from different nodes");
    }
    max_frame_id_ = std::max(max_frame_id_, fid);
  }

  // pLatestTx per node: last 1-based minislot at which the node's largest
  // DYN frame still fits before the segment end.
  p_latest_tx_.assign(app.node_count(), cfg.minislot_count);
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (messages[i].cls != MessageClass::Dynamic) continue;
    const std::size_t n = index_of(app.task(messages[i].sender).node);
    p_latest_tx_[n] = std::min(p_latest_tx_[n], cfg.minislot_count - minislots_[i] + 1);
  }
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (messages[i].cls != MessageClass::Dynamic) continue;
    const NodeId n = app.task(messages[i].sender).node;
    if (p_latest_tx_[index_of(n)] < 1) {
      return make_error("BusLayout: DYN segment too short for the largest frame of node '" +
                        app.node(n).name + "'");
    }
  }

  return true;
}

bool BusLayout::frame_id_owner(int fid, NodeId* owner) const {
  if (fid < 1 || fid >= static_cast<int>(fid_owner_.size())) return false;
  const int raw = fid_owner_[static_cast<std::size_t>(fid)];
  if (raw < 0) return false;
  if (owner != nullptr) *owner = static_cast<NodeId>(raw);
  return true;
}

std::vector<MessageId> BusLayout::hp(MessageId m) const {
  std::vector<MessageId> out;
  const auto& messages = app_->messages();
  const std::size_t mi = index_of(m);
  const int fid = config_.frame_id[mi];
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (i == mi || messages[i].cls != MessageClass::Dynamic) continue;
    if (config_.frame_id[i] == fid && messages[i].priority < messages[mi].priority) {
      out.push_back(static_cast<MessageId>(i));
    }
  }
  return out;
}

std::vector<MessageId> BusLayout::lf(MessageId m) const {
  std::vector<MessageId> out;
  const auto& messages = app_->messages();
  const int fid = config_.frame_id[index_of(m)];
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (messages[i].cls != MessageClass::Dynamic) continue;
    if (config_.frame_id[i] >= 1 && config_.frame_id[i] < fid) {
      out.push_back(static_cast<MessageId>(i));
    }
  }
  return out;
}

}  // namespace flexopt
