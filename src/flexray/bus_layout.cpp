#include "flexopt/flexray/bus_layout.hpp"

#include <algorithm>
#include <string>

namespace flexopt {

BusLayout::BusLayout(const Application& app, const BusParams& params, BusConfig config)
    : app_(&app), params_(params), config_(std::move(config)) {}

Expected<BusLayout> BusLayout::build(const Application& app, const BusParams& params,
                                     BusConfig config) {
  if (!app.finalized()) return make_error("BusLayout: application not finalized");

  const auto& messages = app.messages();
  if (config.frame_id.size() != messages.size()) {
    return make_error("BusLayout: frame_id vector size mismatch");
  }
  if (config.static_slot_count < 0 ||
      config.static_slot_count > SpecLimits::kMaxStaticSlots) {
    return make_error("BusLayout: static slot count outside [0, 1023]");
  }
  if (static_cast<int>(config.static_slot_owner.size()) != config.static_slot_count) {
    return make_error("BusLayout: static slot owner vector size mismatch");
  }
  if (config.minislot_count < 0 || config.minislot_count > SpecLimits::kMaxMinislots) {
    return make_error("BusLayout: minislot count outside [0, 7994]");
  }
  if (config.static_slot_count > 0) {
    if (config.static_slot_len <= 0) {
      return make_error("BusLayout: non-positive static slot length");
    }
    if (config.static_slot_len > SpecLimits::kMaxStaticSlotMacroticks * params.gd_macrotick) {
      return make_error("BusLayout: static slot longer than 661 macroticks");
    }
  }
  for (const NodeId owner : config.static_slot_owner) {
    if (index_of(owner) >= app.node_count()) {
      return make_error("BusLayout: slot owned by unknown node");
    }
  }

  BusLayout layout(app, params, std::move(config));
  const BusConfig& cfg = layout.config_;

  layout.st_segment_len_ = static_cast<Time>(cfg.static_slot_count) * cfg.static_slot_len;
  layout.dyn_segment_len_ = static_cast<Time>(cfg.minislot_count) * params.gd_minislot;
  if (layout.cycle_len() <= 0) return make_error("BusLayout: empty bus cycle");
  if (layout.cycle_len() > SpecLimits::kMaxCycle) {
    return make_error("BusLayout: bus cycle exceeds 16 ms");
  }

  // Per-message durations and minislot footprints.
  layout.durations_.resize(messages.size());
  layout.minislots_.resize(messages.size());
  Time max_st_frame = 0;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    layout.durations_[i] = params.frame_duration(messages[i].size_bytes);
    if (messages[i].cls == MessageClass::Dynamic) {
      layout.minislots_[i] = params.frame_minislots(messages[i].size_bytes);
    } else {
      layout.minislots_[i] = 0;
      max_st_frame = std::max(max_st_frame, layout.durations_[i]);
    }
  }

  // Static segment: slot ownership per node; every ST sender needs a slot;
  // the largest ST frame must fit in one slot.
  layout.st_slots_of_node_.assign(app.node_count(), {});
  for (int s = 0; s < cfg.static_slot_count; ++s) {
    layout.st_slots_of_node_[index_of(cfg.static_slot_owner[static_cast<std::size_t>(s)])]
        .push_back(s);
  }
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (messages[i].cls != MessageClass::Static) continue;
    const NodeId sender_node = app.task(messages[i].sender).node;
    if (layout.st_slots_of_node_[index_of(sender_node)].empty()) {
      return make_error("BusLayout: node '" + app.node(sender_node).name +
                        "' sends ST messages but owns no ST slot");
    }
  }
  if (max_st_frame > 0 && cfg.static_slot_len < max_st_frame) {
    return make_error("BusLayout: static slot shorter than the largest ST frame");
  }

  // Dynamic segment: FrameID sanity and slot ownership.
  layout.fid_owner_.assign(static_cast<std::size_t>(cfg.minislot_count) + 1, -1);
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const int fid = cfg.frame_id[i];
    if (messages[i].cls == MessageClass::Static) {
      if (fid != 0) return make_error("BusLayout: ST message with a DYN FrameID");
      continue;
    }
    if (fid < 1 || fid > cfg.minislot_count) {
      return make_error("BusLayout: DYN message '" + messages[i].name +
                        "' has FrameID outside [1, minislot_count]");
    }
    const int sender_node = static_cast<int>(index_of(app.task(messages[i].sender).node));
    int& owner = layout.fid_owner_[static_cast<std::size_t>(fid)];
    if (owner == -1) {
      owner = sender_node;
    } else if (owner != sender_node) {
      return make_error("BusLayout: FrameID " + std::to_string(fid) +
                        " shared by messages from different nodes");
    }
    layout.max_frame_id_ = std::max(layout.max_frame_id_, fid);
  }

  // pLatestTx per node: last 1-based minislot at which the node's largest
  // DYN frame still fits before the segment end.
  layout.p_latest_tx_.assign(app.node_count(), cfg.minislot_count);
  std::vector<bool> sends_dyn(app.node_count(), false);
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (messages[i].cls != MessageClass::Dynamic) continue;
    const std::size_t n = index_of(app.task(messages[i].sender).node);
    sends_dyn[n] = true;
    layout.p_latest_tx_[n] =
        std::min(layout.p_latest_tx_[n], cfg.minislot_count - layout.minislots_[i] + 1);
  }
  for (std::size_t n = 0; n < app.node_count(); ++n) {
    if (sends_dyn[n] && layout.p_latest_tx_[n] < 1) {
      return make_error("BusLayout: DYN segment too short for the largest frame of node '" +
                        app.node(static_cast<NodeId>(n)).name + "'");
    }
  }

  return layout;
}

bool BusLayout::frame_id_owner(int fid, NodeId* owner) const {
  if (fid < 1 || fid >= static_cast<int>(fid_owner_.size())) return false;
  const int raw = fid_owner_[static_cast<std::size_t>(fid)];
  if (raw < 0) return false;
  if (owner != nullptr) *owner = static_cast<NodeId>(raw);
  return true;
}

std::vector<MessageId> BusLayout::hp(MessageId m) const {
  std::vector<MessageId> out;
  const auto& messages = app_->messages();
  const std::size_t mi = index_of(m);
  const int fid = config_.frame_id[mi];
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (i == mi || messages[i].cls != MessageClass::Dynamic) continue;
    if (config_.frame_id[i] == fid && messages[i].priority < messages[mi].priority) {
      out.push_back(static_cast<MessageId>(i));
    }
  }
  return out;
}

std::vector<MessageId> BusLayout::lf(MessageId m) const {
  std::vector<MessageId> out;
  const auto& messages = app_->messages();
  const int fid = config_.frame_id[index_of(m)];
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (messages[i].cls != MessageClass::Dynamic) continue;
    if (config_.frame_id[i] >= 1 && config_.frame_id[i] < fid) {
      out.push_back(static_cast<MessageId>(i));
    }
  }
  return out;
}

}  // namespace flexopt
