#include "flexopt/math/interpolation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace flexopt {

Expected<bool> NewtonPolynomial::add_point(double x, double y) {
  for (const double existing : xs_) {
    if (existing == x) return make_error("NewtonPolynomial: duplicate abscissa");
  }
  xs_.push_back(x);
  // Extend the divided-difference diagonal: diag_ holds, before this call,
  // f[x_{i}..x_{n-1}] for i = 0..n-1 evaluated over the previous points.
  // We rebuild bottom-up so each add_point is O(n).
  std::vector<double> next_diag(xs_.size());
  next_diag[xs_.size() - 1] = y;
  for (std::size_t i = xs_.size() - 1; i-- > 0;) {
    const double denom = xs_.back() - xs_[i];
    next_diag[i] = (next_diag[i + 1] - diag_[i]) / denom;
  }
  diag_ = std::move(next_diag);
  coef_.push_back(diag_[0]);
  return true;
}

double NewtonPolynomial::evaluate(double x) const {
  double acc = 0.0;
  for (std::size_t i = coef_.size(); i-- > 0;) {
    acc = acc * (x - xs_[i]) + coef_[i];
  }
  return acc;
}

Expected<PiecewiseLinear> PiecewiseLinear::fit(std::vector<double> xs, std::vector<double> ys) {
  if (xs.size() != ys.size()) return make_error("PiecewiseLinear: size mismatch");
  if (xs.empty()) return make_error("PiecewiseLinear: no samples");
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  PiecewiseLinear out;
  out.xs_.reserve(xs.size());
  out.ys_.reserve(xs.size());
  for (const std::size_t i : order) {
    if (!out.xs_.empty() && out.xs_.back() == xs[i]) {
      return make_error("PiecewiseLinear: duplicate abscissa");
    }
    out.xs_.push_back(xs[i]);
    out.ys_.push_back(ys[i]);
  }
  return out;
}

double PiecewiseLinear::evaluate(double x) const {
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs_.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] + t * (ys_[hi] - ys_[lo]);
}

Expected<bool> ResponseTimeCurve::add_point(double x, double y) {
  for (const double existing : xs_) {
    if (existing == x) return make_error("ResponseTimeCurve: duplicate abscissa");
  }
  if (xs_.size() < options_.max_newton_points) {
    auto r = newton_.add_point(x, y);
    if (!r.ok()) return r;
  }
  xs_.push_back(x);
  ys_.push_back(y);
  fallback_.reset();
  return true;
}

double ResponseTimeCurve::evaluate(double x) const {
  double v = 0.0;
  if (xs_.size() <= options_.max_newton_points && newton_.size() == xs_.size()) {
    v = newton_.evaluate(x);
    if (!std::isfinite(v)) v = options_.clamp_hi;
  } else {
    if (!fallback_.has_value()) {
      auto pl = PiecewiseLinear::fit(xs_, ys_);
      if (!pl.ok()) return options_.clamp_hi;
      fallback_.emplace(std::move(pl).value());
    }
    v = fallback_->evaluate(x);
  }
  return std::clamp(v, options_.clamp_lo, options_.clamp_hi);
}

}  // namespace flexopt
