#include "flexopt/math/hyperperiod.hpp"

#include <limits>

namespace flexopt {

std::int64_t gcd(std::int64_t a, std::int64_t b) {
  while (b != 0) {
    const std::int64_t r = a % b;
    a = b;
    b = r;
  }
  return a < 0 ? -a : a;
}

Expected<std::int64_t> checked_lcm(std::int64_t a, std::int64_t b) {
  if (a <= 0 || b <= 0) return make_error("lcm requires strictly positive operands");
  const std::int64_t g = gcd(a, b);
  const std::int64_t a_reduced = a / g;
  if (a_reduced > std::numeric_limits<std::int64_t>::max() / b) {
    return make_error("lcm overflow");
  }
  return a_reduced * b;
}

Expected<std::int64_t> checked_mul(std::int64_t a, std::int64_t b) {
  if (a <= 0 || b <= 0) return make_error("checked_mul requires strictly positive operands");
  if (a > std::numeric_limits<std::int64_t>::max() / b) {
    return make_error("multiplication overflow");
  }
  return a * b;
}

Expected<std::int64_t> checked_align_up(std::int64_t value, std::int64_t block) {
  if (value < 0 || block <= 0) {
    return make_error("checked_align_up requires value >= 0 and block > 0");
  }
  const std::int64_t rem = value % block;
  if (rem == 0) return value;
  const std::int64_t pad = block - rem;
  if (value > std::numeric_limits<std::int64_t>::max() - pad) {
    return make_error("alignment overflow");
  }
  return value + pad;
}

Expected<std::int64_t> hyperperiod(std::span<const std::int64_t> periods) {
  if (periods.empty()) return make_error("hyperperiod of empty period set");
  std::int64_t acc = 1;
  for (const std::int64_t p : periods) {
    auto next = checked_lcm(acc, p);
    if (!next.ok()) return next;
    acc = next.value();
  }
  return acc;
}

}  // namespace flexopt
