#pragma once

/// \file interpolation.hpp
/// Curve fitting used by the OBC-CF heuristic (Fig. 8 of the paper).
///
/// The paper fits a Newton polynomial through the worst-case response times
/// sampled at a few DYN-segment lengths and evaluates it everywhere else.
/// Newton's divided-difference form is chosen because adding one sample
/// point extends the fit in O(n) without refitting (footnote 1 of the
/// paper).  High-degree polynomial interpolation oscillates (Runge), so the
/// implementation degrades to piecewise-linear above a degree cap and clamps
/// evaluations to a caller-provided range.

#include <cstddef>
#include <optional>
#include <vector>

#include "flexopt/util/expected.hpp"

namespace flexopt {

/// Newton divided-difference interpolating polynomial over distinct x values.
///
/// Incremental: `add_point` appends one (x, y) sample and extends the
/// divided-difference table in O(n).
class NewtonPolynomial {
 public:
  NewtonPolynomial() = default;

  /// Append a sample.  x must differ from all previously added xs
  /// (duplicate x would divide by zero); returns an error in that case.
  Expected<bool> add_point(double x, double y);

  /// Number of samples.
  [[nodiscard]] std::size_t size() const { return xs_.size(); }

  /// Evaluate the interpolant at x (Horner on the Newton form).
  /// Requires at least one point.
  [[nodiscard]] double evaluate(double x) const;

 private:
  std::vector<double> xs_;
  /// coef_[i] is the leading divided difference f[x0..xi].
  std::vector<double> coef_;
  /// Last column of the divided-difference table, kept so the next
  /// add_point runs in O(n).
  std::vector<double> diag_;
};

/// Piecewise-linear interpolation over sorted samples with constant
/// extrapolation at the ends.  Used as the robust fallback when the Newton
/// fit would have excessive degree.
class PiecewiseLinear {
 public:
  /// Build from unsorted samples; xs must be distinct.
  static Expected<PiecewiseLinear> fit(std::vector<double> xs, std::vector<double> ys);

  [[nodiscard]] double evaluate(double x) const;
  [[nodiscard]] std::size_t size() const { return xs_.size(); }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// The fitter the OBC-CF search actually uses: Newton up to `max_degree`
/// samples, piecewise-linear beyond, with evaluations clamped to
/// [clamp_lo, clamp_hi].
class ResponseTimeCurve {
 public:
  struct Options {
    std::size_t max_newton_points = 8;
    double clamp_lo = 0.0;
    double clamp_hi = 1e18;
  };

  ResponseTimeCurve() : ResponseTimeCurve(Options{}) {}
  explicit ResponseTimeCurve(Options options) : options_(options) {}

  Expected<bool> add_point(double x, double y);
  [[nodiscard]] double evaluate(double x) const;
  [[nodiscard]] std::size_t size() const { return xs_.size(); }

 private:
  Options options_;
  NewtonPolynomial newton_;
  std::vector<double> xs_;
  std::vector<double> ys_;
  /// Cached piecewise-linear fallback, rebuilt lazily after add_point once
  /// the sample count exceeds the Newton degree cap (evaluate() is hot in
  /// the OBC-CF candidate scan).
  mutable std::optional<PiecewiseLinear> fallback_;
};

}  // namespace flexopt
