#pragma once

/// \file hyperperiod.hpp
/// LCM-based hyper-period computation.  The application model combines task
/// graphs of different periods into one activation pattern over the LCM of
/// the periods (Section 4 of the paper).

#include <cstdint>
#include <span>

#include "flexopt/util/expected.hpp"

namespace flexopt {

/// Greatest common divisor; gcd(0, x) == x.
std::int64_t gcd(std::int64_t a, std::int64_t b);

/// Least common multiple with overflow detection.
Expected<std::int64_t> checked_lcm(std::int64_t a, std::int64_t b);

/// Hyper-period (LCM) of a non-empty set of strictly positive periods.
/// Fails on overflow or invalid input rather than silently wrapping —
/// a wrapped hyper-period would corrupt every downstream schedule length.
Expected<std::int64_t> hyperperiod(std::span<const std::int64_t> periods);

}  // namespace flexopt
