#pragma once

/// \file hyperperiod.hpp
/// LCM-based hyper-period computation.  The application model combines task
/// graphs of different periods into one activation pattern over the LCM of
/// the periods (Section 4 of the paper).

#include <cstdint>
#include <span>

#include "flexopt/util/expected.hpp"

namespace flexopt {

/// Greatest common divisor; gcd(0, x) == x.
std::int64_t gcd(std::int64_t a, std::int64_t b);

/// Least common multiple with overflow detection.
Expected<std::int64_t> checked_lcm(std::int64_t a, std::int64_t b);

/// Product of two strictly positive operands with overflow detection.
/// Simulation horizons are products of hyper-periods and repeat counts;
/// near-coprime periods push those within range of std::int64_t wrap.
Expected<std::int64_t> checked_mul(std::int64_t a, std::int64_t b);

/// Rounds `value` (>= 0) up to the next multiple of `block` (> 0), failing
/// on overflow instead of wrapping.
Expected<std::int64_t> checked_align_up(std::int64_t value, std::int64_t block);

/// Hyper-period (LCM) of a non-empty set of strictly positive periods.
/// Fails on overflow or invalid input rather than silently wrapping —
/// a wrapped hyper-period would corrupt every downstream schedule length.
Expected<std::int64_t> hyperperiod(std::span<const std::int64_t> periods);

}  // namespace flexopt
