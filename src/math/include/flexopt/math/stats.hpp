#pragma once

/// \file stats.hpp
/// Summary statistics for the experiment harnesses (average deviation
/// percentages of Fig. 9, runtime aggregation, …).

#include <span>

namespace flexopt {

struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;
};

/// Summary of a sample set; all-zero summary for empty input.
Summary summarize(std::span<const double> values);

/// p-th percentile (0..100) of an unsorted sample by linear interpolation
/// over the (n-1)-spaced ranks (numpy's default "linear" rule):
/// rank = p/100 * (n-1), result = v[floor(rank)] interpolated towards
/// v[floor(rank)+1].  Pinned semantics: under this rule
/// percentile(v, 50) == median(v) for every sample size — odd, even, or
/// duplicate-heavy (regression-tested in tests/math/stats_test.cpp), so
/// reported p50 columns and medians can never disagree.  Requires
/// non-empty input.
double percentile(std::span<const double> values, double p);

/// percentile() for an already ascending-sorted sample: skips the internal
/// copy-and-sort, so callers extracting several quantiles of one sample
/// sort once and query many times.
double percentile_sorted(std::span<const double> sorted, double p);

/// Median: the middle order statistic for odd sizes, the mean of the two
/// middle ones for even — by construction equal to percentile(values, 50).
/// Requires non-empty input.
double median(std::span<const double> values);

}  // namespace flexopt
