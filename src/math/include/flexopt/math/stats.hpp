#pragma once

/// \file stats.hpp
/// Summary statistics for the experiment harnesses (average deviation
/// percentages of Fig. 9, runtime aggregation, …).

#include <span>

namespace flexopt {

struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;
};

/// Summary of a sample set; all-zero summary for empty input.
Summary summarize(std::span<const double> values);

/// p-th percentile (0..100) by linear interpolation; requires non-empty input.
double percentile(std::span<const double> values, double p);

}  // namespace flexopt
