#pragma once

/// \file fixed_point.hpp
/// Fixed-point iteration driver for response-time recurrences.
///
/// Both the FPS task analysis and the DYN message analysis (Eq. 3) have the
/// classic shape t_{k+1} = f(t_k), f monotone non-decreasing, starting from
/// t = 0, converging when f(t) == t or diverging past a deadline-derived
/// horizon (then the activity is unschedulable and the caller reports
/// +infinity).

#include <cstdint>

#include "flexopt/util/time.hpp"

namespace flexopt {

struct FixedPointResult {
  /// Converged value, or kTimeInfinity when the horizon was exceeded.
  Time value = kTimeInfinity;
  bool converged = false;
  /// Number of evaluations of f performed, on every exit path (convergence,
  /// horizon overrun, saturation wrap, iteration cap alike).
  int iterations = 0;
};

/// Iterate t <- f(t) from t = `seed` (default 0) until convergence or
/// t > horizon.  `f` must be monotone non-decreasing for the result to be
/// the least fixed point (standard RTA argument).
///
/// `seed` accelerates convergence without changing the result: for any
/// seed with seed <= lfp(f) and seed <= f(seed), the iteration converges
/// to the same least fixed point as from 0, and escapes the horizon iff
/// the from-0 iteration does (f monotone makes the seeded iterates
/// dominate the unseeded ones pointwise).  The canonical safe seed is the
/// converged value of the same recurrence against a subset of the
/// interference — e.g. the base-profile response in the list scheduler's
/// candidate ranking.  Only `iterations` differs between seeded and
/// unseeded runs.
template <typename F>
FixedPointResult iterate_to_fixed_point(F&& f, Time horizon, int max_iterations = 10'000,
                                        Time seed = 0) {
  FixedPointResult result;
  Time t = seed;
  for (;;) {
    ++result.iterations;
    const Time next = f(t);
    if (next == t) {
      result.value = t;
      result.converged = true;
      return result;
    }
    if (next > horizon || next < t) {
      // Past the horizon (or f not monotone due to saturation): report
      // divergence; response time treated as unbounded.
      return result;
    }
    t = next;
    if (result.iterations >= max_iterations) return result;
  }
}

}  // namespace flexopt
