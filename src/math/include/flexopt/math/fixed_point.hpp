#pragma once

/// \file fixed_point.hpp
/// Fixed-point iteration driver for response-time recurrences.
///
/// Both the FPS task analysis and the DYN message analysis (Eq. 3) have the
/// classic shape t_{k+1} = f(t_k), f monotone non-decreasing, starting from
/// t = 0, converging when f(t) == t or diverging past a deadline-derived
/// horizon (then the activity is unschedulable and the caller reports
/// +infinity).

#include <cstdint>

#include "flexopt/util/time.hpp"

namespace flexopt {

struct FixedPointResult {
  /// Converged value, or kTimeInfinity when the horizon was exceeded.
  Time value = kTimeInfinity;
  bool converged = false;
  int iterations = 0;
};

/// Iterate t <- f(t) from t = f(0) until convergence or t > horizon.
/// `f` must be monotone non-decreasing for the result to be the least fixed
/// point (standard RTA argument).
template <typename F>
FixedPointResult iterate_to_fixed_point(F&& f, Time horizon, int max_iterations = 10'000) {
  FixedPointResult result;
  Time t = 0;
  for (result.iterations = 0; result.iterations < max_iterations; ++result.iterations) {
    const Time next = f(t);
    if (next == t) {
      result.value = t;
      result.converged = true;
      return result;
    }
    if (next > horizon || next < t) {
      // Past the horizon (or f not monotone due to saturation): report
      // divergence; response time treated as unbounded.
      return result;
    }
    t = next;
  }
  return result;
}

}  // namespace flexopt
