#include "flexopt/math/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace flexopt {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (const double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (const double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1 ? std::sqrt(sq / static_cast<double>(values.size() - 1)) : 0.0;
  return s;
}

double percentile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) throw std::invalid_argument("percentile of empty sample");
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile of empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

double median(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("median of empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  return n % 2 == 1 ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

}  // namespace flexopt
