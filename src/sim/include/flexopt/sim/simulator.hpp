#pragma once

/// \file simulator.hpp
/// Discrete-event simulation of the full system of Section 2/3: per-node
/// CPUs running the two-scheduler kernel (SCS table + preemptive FPS in the
/// slack) and the FlexRay bus (ST slots per the schedule table, FTDMA
/// minislot arbitration with per-FrameID CHI priority queues and the
/// pLatestTx transmission gate).
///
/// The simulator serves three purposes:
///  * soundness validation — observed completions must never exceed the
///    analysis bounds (property tests);
///  * the didactic walkthroughs of Figs. 1, 3 and 4 (message timelines);
///  * letting example programs show a configured system actually running.
///
/// The event kernel itself lives in flexopt/sim/engine.hpp (ClusterEngine);
/// simulate() drains exactly one engine.  The multi-cluster network
/// simulator (flexopt/netsim/netsim.hpp) runs one engine per cluster on a
/// merged event order.

#include <cstdint>
#include <vector>

#include "flexopt/analysis/static_schedule.hpp"
#include "flexopt/flexray/bus_layout.hpp"
#include "flexopt/util/expected.hpp"

namespace flexopt {

struct SimOptions {
  /// Number of hyper-periods to simulate.  When the bus cycle does not
  /// divide the hyper-period, values > 1 align the horizon up to a multiple
  /// of lcm(cycle, hyper-period) so the ST table replay and the DYN cycle
  /// grid co-terminate (the run then covers at least the requested span).
  int hyperperiods = 1;
  /// Record every bus transmission in SimResult::trace.
  bool record_trace = false;
};

/// One bus transmission (ST frame part or DYN frame) for trace inspection.
/// The same record shape is shared by the single-bus simulator and the
/// multi-cluster network simulator: single-bus runs leave `cluster` and
/// `hop_index` at 0.
struct TransmissionRecord {
  MessageId message{};
  int instance = 0;
  bool dynamic = false;
  /// ST: 0-based slot index; DYN: FrameID.
  int slot = 0;
  std::int64_t cycle = 0;
  Time start = 0;
  Time finish = 0;
  /// Cluster whose bus carried the transmission (0 for single-bus runs).
  std::uint32_t cluster = 0;
  /// Hop ordinal along the message's cluster route (0 = source cluster).
  int hop_index = 0;
};

struct SimResult {
  /// Worst observed graph-relative completion per task / message;
  /// kTimeNone when no instance completed within the horizon.
  std::vector<Time> task_worst_completion;
  std::vector<Time> message_worst_completion;
  /// Jobs (task or message instances) still unfinished at the horizon.
  int unfinished_jobs = 0;
  /// SCS table entries that started before their predecessors completed
  /// (indicates an inconsistent table; 0 for schedules from the list
  /// scheduler run over an aligned horizon).
  int precedence_violations = 0;
  /// Simulated horizon — hyperperiods * hyper-period, possibly rounded up
  /// by the lcm alignment described at SimOptions::hyperperiods.
  Time horizon = 0;
  std::vector<TransmissionRecord> trace;
};

/// Simulates `options.hyperperiods` hyper-periods of the system described
/// by `layout`, replaying ST traffic from `schedule` and arbitrating DYN
/// traffic online.
Expected<SimResult> simulate(const BusLayout& layout, const StaticSchedule& schedule,
                             const SimOptions& options = {});

}  // namespace flexopt
