#pragma once

/// \file simulator.hpp
/// Discrete-event simulation of the full system of Section 2/3: per-node
/// CPUs running the two-scheduler kernel (SCS table + preemptive FPS in the
/// slack) and the FlexRay bus (ST slots per the schedule table, FTDMA
/// minislot arbitration with per-FrameID CHI priority queues and the
/// pLatestTx transmission gate).
///
/// The simulator serves three purposes:
///  * soundness validation — observed completions must never exceed the
///    analysis bounds (property tests);
///  * the didactic walkthroughs of Figs. 1, 3 and 4 (message timelines);
///  * letting example programs show a configured system actually running.

#include <vector>

#include "flexopt/analysis/static_schedule.hpp"
#include "flexopt/flexray/bus_layout.hpp"
#include "flexopt/util/expected.hpp"

namespace flexopt {

struct SimOptions {
  /// Number of hyper-periods to simulate.  Values > 1 require the bus cycle
  /// to divide the hyper-period (otherwise the ST schedule table does not
  /// repeat coherently and simulation is refused).
  int hyperperiods = 1;
  /// Record every bus transmission in SimResult::trace.
  bool record_trace = false;
};

/// One bus transmission (ST frame part or DYN frame) for trace inspection.
struct TransmissionRecord {
  MessageId message{};
  int instance = 0;
  bool dynamic = false;
  /// ST: 0-based slot index; DYN: FrameID.
  int slot = 0;
  std::int64_t cycle = 0;
  Time start = 0;
  Time finish = 0;
};

struct SimResult {
  /// Worst observed graph-relative completion per task / message;
  /// kTimeNone when no instance completed within the horizon.
  std::vector<Time> task_worst_completion;
  std::vector<Time> message_worst_completion;
  /// Jobs (task or message instances) still unfinished at the horizon.
  int unfinished_jobs = 0;
  /// SCS table entries that started before their predecessors completed
  /// (indicates an inconsistent table; 0 for schedules from the list
  /// scheduler run over an aligned horizon).
  int precedence_violations = 0;
  std::vector<TransmissionRecord> trace;
};

/// Simulates `options.hyperperiods` hyper-periods of the system described
/// by `layout`, replaying ST traffic from `schedule` and arbitrating DYN
/// traffic online.
Expected<SimResult> simulate(const BusLayout& layout, const StaticSchedule& schedule,
                             const SimOptions& options = {});

}  // namespace flexopt
