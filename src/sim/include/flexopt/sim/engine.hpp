#pragma once

/// \file engine.hpp
/// The steppable per-cluster simulation kernel behind simulate(): one
/// FlexRay bus (ST replay + FTDMA minislot arbitration) plus the two-
/// scheduler CPUs of the nodes attached to it, exposed as a ClusterEngine
/// that an external coordinator can advance one event at a time.
///
/// simulate() (simulator.hpp) wraps exactly one engine and drains it — the
/// single-bus behaviour is bit-identical to the pre-refactor simulator.
/// The network simulator (flexopt/netsim/netsim.hpp) instantiates one
/// engine per cluster, merges their event queues on global time order, and
/// uses the gating hooks to couple them: a gateway forwarding relay in the
/// downstream cluster is held back (gate_task) until its upstream receive
/// relay completes (release_gated).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "flexopt/analysis/static_schedule.hpp"
#include "flexopt/analysis/tsn_analysis.hpp"
#include "flexopt/flexray/bus_layout.hpp"
#include "flexopt/sim/simulator.hpp"
#include "flexopt/util/expected.hpp"

namespace flexopt {

/// Construction-time knobs of one cluster kernel.
struct EngineOptions {
  /// Number of hyper-periods to simulate (ignored when `horizon` is set).
  int hyperperiods = 1;
  /// Explicit horizon override (0 = derive from hyperperiods).  Must be a
  /// positive multiple of the hyper-period; a network coordinator passes
  /// the same lcm-aligned horizon to every cluster engine so job tables
  /// stay index-compatible across clusters.
  Time horizon = 0;
  /// Record every bus transmission in the result trace.
  bool record_trace = false;
  /// Cluster ordinal stamped into every TransmissionRecord.
  std::uint32_t cluster = 0;
  /// Route hop ordinal per local message (indexed by local MessageId;
  /// empty = all zero) stamped into TransmissionRecord::hop_index.
  std::vector<int> message_hop_index;
};

/// Per-completion callbacks, fired while the engine processes events.  A
/// hook may call gate/release on *other* engines (cross-cluster coupling)
/// but must not re-enter the engine that fired it.
struct EngineHooks {
  /// A task job completed (SCS table finish or FPS burst end).
  std::function<void(TaskId, std::size_t job, Time when)> task_completed;
  /// A message job was delivered on this cluster's bus.
  std::function<void(MessageId, std::size_t job, Time when)> message_delivered;
};

/// One cluster's discrete-event kernel, advanced one event at a time.
class ClusterEngine {
 public:
  /// Validates options and builds job tables, the static replay and the
  /// initial event population.  `layout` and `schedule` must outlive the
  /// engine.  When `options.hyperperiods > 1` and the bus cycle does not
  /// divide the hyper-period, the horizon is aligned up to a multiple of
  /// lcm(cycle, hyper-period) so both the ST table (hyper-period-periodic,
  /// matching the analysis model) and the DYN cycle grid co-terminate.
  [[nodiscard]] static Expected<std::unique_ptr<ClusterEngine>> create(
      const BusLayout& layout, const StaticSchedule& schedule, EngineOptions options = {},
      EngineHooks hooks = {});

  /// TSN-cluster variant: ST messages are replayed from `schedule` (built by
  /// build_tsn_schedule), ET messages are queued per egress port and served
  /// non-preemptively by strict priority in the gaps between gate windows,
  /// with the same guard banding the analysis bound assumes (a frame only
  /// starts if it completes before the next window opens).
  [[nodiscard]] static Expected<std::unique_ptr<ClusterEngine>> create(
      const TsnLayout& layout, const StaticSchedule& schedule, EngineOptions options = {},
      EngineHooks hooks = {});

  ~ClusterEngine();
  ClusterEngine(const ClusterEngine&) = delete;
  ClusterEngine& operator=(const ClusterEngine&) = delete;

  /// True when no events remain (the horizon has been drained).
  [[nodiscard]] bool done() const;
  /// Timestamp of the next pending event (kTimeInfinity when done).
  [[nodiscard]] Time next_time() const;
  /// Tie-break rank of the next pending event at equal timestamps — the
  /// engine-internal EventType order, exposed so a coordinator merging
  /// several engines preserves the single-engine ordering semantics.
  [[nodiscard]] int next_order() const;
  /// Processes exactly one event (the queue head) and every CPU
  /// recomputation it triggers.
  void process_next();

  /// Adds one extra pending-predecessor token to every job of `task`,
  /// holding it back until release_gated().  Call before processing any
  /// event.  Used for gateway forwarding relays whose trigger lives in
  /// another cluster.
  void gate_task(TaskId task);
  /// Releases the gate token of one job of `task` at time `now` (>= the
  /// time of the last processed event).  When this was the final pending
  /// predecessor the job becomes ready and the CPU is recomputed.
  void release_gated(TaskId task, std::size_t job, Time now);

  /// Simulated horizon (after any lcm alignment).
  [[nodiscard]] Time horizon() const;
  /// Events processed so far (throughput metric for benches).
  [[nodiscard]] std::uint64_t events_processed() const;
  /// Finalizes unfinished-job accounting and surrenders the result.  The
  /// engine must not be stepped afterwards.
  [[nodiscard]] SimResult finish();

 private:
  ClusterEngine();
  /// Shared construction body; exactly one of `bus` / `tsn` is non-null.
  [[nodiscard]] static Expected<std::unique_ptr<ClusterEngine>> create_impl(
      const BusLayout* bus, const TsnLayout* tsn, const StaticSchedule& schedule,
      EngineOptions options, EngineHooks hooks);
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace flexopt
