#include "flexopt/sim/simulator.hpp"

#include <memory>
#include <utility>

#include "flexopt/sim/engine.hpp"

namespace flexopt {

Expected<SimResult> simulate(const BusLayout& layout, const StaticSchedule& schedule,
                             const SimOptions& options) {
  EngineOptions engine_options;
  engine_options.hyperperiods = options.hyperperiods;
  engine_options.record_trace = options.record_trace;
  auto engine = ClusterEngine::create(layout, schedule, std::move(engine_options));
  if (!engine.ok()) return engine.error();
  while (!engine.value()->done()) engine.value()->process_next();
  SimResult result = engine.value()->finish();
  result.horizon = engine.value()->horizon();
  return result;
}

}  // namespace flexopt
