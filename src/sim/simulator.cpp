#include "flexopt/sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <vector>

namespace flexopt {
namespace {

/// Event kinds, in tie-break order at equal timestamps: completions and
/// deliveries first (they enable work), then releases, then CPU/bus slot
/// boundaries that consume the enabled state.
enum class EventType : int {
  ScsFinish = 0,
  FpsFinish = 1,
  StDelivery = 2,
  DynDelivery = 3,
  GraphRelease = 4,
  TaskRelease = 5,
  ScsStart = 6,
  DynSlot = 7,
};

struct Event {
  Time time = 0;
  EventType type{};
  std::uint64_t seq = 0;
  std::size_t a = 0;  // node / graph index
  std::size_t b = 0;  // job index
  std::int64_t c = 0;  // generation / counter / cycle
  std::int64_t d = 0;  // extra payload (FrameID, …)

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    if (type != other.type) return type > other.type;
    return seq > other.seq;
  }
};

struct TaskJob {
  Time release = 0;
  std::size_t preds_pending = 0;  // predecessor jobs + the release token
  Time ready_time = kTimeNone;
  Time remaining = 0;  // FPS only
  bool done = false;
  Time completion = kTimeNone;
};

struct MsgJob {
  Time release = 0;
  bool sender_done = false;
  Time ready_time = kTimeNone;  // DYN: when handed to the CHI
  bool delivered = false;
  Time completion = kTimeNone;
};

/// Entry in a CHI dynamic send queue.
struct ChiEntry {
  int priority = 0;
  Time ready = 0;
  std::uint32_t message = 0;
  std::size_t job = 0;

  bool operator<(const ChiEntry& o) const {
    if (priority != o.priority) return priority < o.priority;
    if (ready != o.ready) return ready < o.ready;
    return job < o.job;
  }
};

}  // namespace

Expected<SimResult> simulate(const BusLayout& layout, const StaticSchedule& schedule,
                             const SimOptions& options) {
  const Application& app = layout.application();
  const Time H = schedule.hyperperiod();
  const Time cycle_len = layout.cycle_len();
  if (options.hyperperiods < 1) return make_error("simulate: hyperperiods must be >= 1");
  if (options.hyperperiods > 1 && H % cycle_len != 0) {
    return make_error(
        "simulate: multi-hyperperiod runs require the bus cycle to divide the hyper-period");
  }
  const Time horizon = H * options.hyperperiods;

  // ---- job tables ----------------------------------------------------------
  auto instances_of = [&](Time period) { return static_cast<std::size_t>(horizon / period); };
  std::vector<std::vector<TaskJob>> task_jobs(app.task_count());
  std::vector<std::vector<MsgJob>> msg_jobs(app.message_count());
  for (std::uint32_t t = 0; t < app.task_count(); ++t) {
    const Time period = app.period_of(ActivityRef::task(static_cast<TaskId>(t)));
    auto& vec = task_jobs[t];
    vec.resize(instances_of(period));
    const std::size_t preds = app.predecessors(ActivityRef::task(static_cast<TaskId>(t))).size();
    for (std::size_t k = 0; k < vec.size(); ++k) {
      vec[k].release = static_cast<Time>(k) * period;
      vec[k].preds_pending = preds + 1;  // +1: the graph-release token
      vec[k].remaining = app.tasks()[t].wcet;
    }
  }
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    const Time period = app.period_of(ActivityRef::message(static_cast<MessageId>(m)));
    auto& vec = msg_jobs[m];
    vec.resize(instances_of(period));
    for (std::size_t k = 0; k < vec.size(); ++k) {
      vec[k].release = static_cast<Time>(k) * period;
    }
  }

  // ---- event queue ---------------------------------------------------------
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t seq = 0;
  auto push = [&](Event e) {
    if (e.time >= horizon) return;
    e.seq = seq++;
    events.push(e);
  };

  // Graph releases.
  for (std::uint32_t g = 0; g < app.graph_count(); ++g) {
    const Time period = app.graphs()[g].period;
    for (Time r = 0; r < horizon; r += period) {
      push(Event{r, EventType::GraphRelease, 0, g, static_cast<std::size_t>(r / period), 0, 0});
    }
  }

  // SCS table entries, repeated every hyper-period.
  std::vector<std::vector<Time>> scs_starts(app.node_count());  // for next-SCS lookup
  for (std::uint32_t t = 0; t < app.task_count(); ++t) {
    if (app.tasks()[t].policy != TaskPolicy::Scs) continue;
    const std::size_t node = index_of(app.tasks()[t].node);
    const std::size_t per_h = schedule.task_entries(static_cast<TaskId>(t)).size();
    for (int j = 0; j < options.hyperperiods; ++j) {
      const Time shift = static_cast<Time>(j) * H;
      for (const ScheduledTask& e : schedule.task_entries(static_cast<TaskId>(t))) {
        const std::size_t job =
            static_cast<std::size_t>(e.instance) + per_h * static_cast<std::size_t>(j);
        push(Event{e.start + shift, EventType::ScsStart, 0, node, job, 0,
                   static_cast<std::int64_t>(t)});
        push(Event{e.finish + shift, EventType::ScsFinish, 0, node, job, 0,
                   static_cast<std::int64_t>(t)});
        scs_starts[node].push_back(e.start + shift);
      }
    }
  }
  for (auto& starts : scs_starts) std::sort(starts.begin(), starts.end());

  // ST message deliveries replayed from the table.
  struct StReplay {
    Time start;
    Time finish;
    std::int64_t cycle;
    int slot;
  };
  std::vector<std::vector<StReplay>> st_replay(app.message_count());
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (app.messages()[m].cls != MessageClass::Static) continue;
    const std::size_t per_h = schedule.message_entries(static_cast<MessageId>(m)).size();
    st_replay[m].resize(msg_jobs[m].size());
    for (int j = 0; j < options.hyperperiods; ++j) {
      const Time shift = static_cast<Time>(j) * H;
      for (const ScheduledMessage& e : schedule.message_entries(static_cast<MessageId>(m))) {
        const std::size_t job =
            static_cast<std::size_t>(e.instance) + per_h * static_cast<std::size_t>(j);
        if (job >= msg_jobs[m].size()) continue;
        st_replay[m][job] = StReplay{e.start + shift, e.finish + shift,
                                     e.cycle + shift / cycle_len, e.slot};
        push(Event{e.finish + shift, EventType::StDelivery, 0, 0, job, 0,
                   static_cast<std::int64_t>(m)});
      }
    }
  }

  // DYN segment walkers: one chain of DynSlot events per bus cycle.
  const bool has_dyn = layout.max_frame_id() > 0;
  if (has_dyn) {
    for (Time c = 0; c * cycle_len < horizon; ++c) {
      push(Event{c * cycle_len + layout.st_segment_len(), EventType::DynSlot, 0, 0, 0,
                 /*counter=*/1, /*fid=*/1});
    }
  }

  // ---- CPU state -----------------------------------------------------------
  struct NodeState {
    std::multiset<ChiEntry> ready_fps;  // ordered by priority / ready / job
    bool fps_running = false;
    std::uint32_t running_task = 0;
    std::size_t running_job = 0;
    Time burst_start = 0;
    Time scs_busy_until = 0;
    std::int64_t generation = 0;
  };
  std::vector<NodeState> cpus(app.node_count());

  SimResult result;
  result.task_worst_completion.assign(app.task_count(), kTimeNone);
  result.message_worst_completion.assign(app.message_count(), kTimeNone);

  // CHI dynamic send queues, keyed by FrameID (owner node is implicit).
  std::map<int, std::multiset<ChiEntry>> chi;

  // ---- propagation helpers -------------------------------------------------
  auto node_of_task = [&](std::uint32_t t) { return index_of(app.tasks()[t].node); };

  std::vector<Event> recompute_stack;  // defer to avoid recursion

  auto next_scs_start = [&](std::size_t node, Time now) -> Time {
    const auto& starts = scs_starts[node];
    const auto it = std::upper_bound(starts.begin(), starts.end(), now);
    return it == starts.end() ? kTimeInfinity : *it;
  };

  auto recompute_cpu = [&](std::size_t node, Time now) {
    NodeState& cpu = cpus[node];
    ++cpu.generation;
    // Preempt whatever FPS job is in a burst; account executed time.
    if (cpu.fps_running) {
      TaskJob& job = task_jobs[cpu.running_task][cpu.running_job];
      job.remaining -= now - cpu.burst_start;
      assert(job.remaining >= 0);
      if (job.remaining > 0) {
        cpu.ready_fps.insert(ChiEntry{app.tasks()[cpu.running_task].priority, job.ready_time,
                                      cpu.running_task, cpu.running_job});
      }
      cpu.fps_running = false;
    }
    if (now < cpu.scs_busy_until) return;  // CPU held by the static table
    if (cpu.ready_fps.empty()) return;
    const ChiEntry top = *cpu.ready_fps.begin();
    cpu.ready_fps.erase(cpu.ready_fps.begin());
    TaskJob& job = task_jobs[top.message][top.job];
    cpu.fps_running = true;
    cpu.running_task = top.message;
    cpu.running_job = top.job;
    cpu.burst_start = now;
    const Time finish = now + job.remaining;
    if (finish <= next_scs_start(node, now)) {
      recompute_stack.push_back(Event{finish, EventType::FpsFinish, 0, node, top.job,
                                      cpu.generation, static_cast<std::int64_t>(top.message)});
    }
    // Otherwise the burst is cut by the next SCS start; that ScsStart event
    // triggers the next recompute.
  };

  // Forward declarations via std::function-free recursion: completions are
  // processed iteratively through a small work list.
  struct Completion {
    ActivityRef activity;
    std::size_t job;
    Time when;
  };
  std::vector<Completion> work;

  auto record_completion = [&](ActivityRef a, std::size_t job, Time when) {
    const Time release = a.is_task() ? task_jobs[a.index][job].release
                                     : msg_jobs[a.index][job].release;
    const Time relative = when - release;
    Time& slot = a.is_task() ? result.task_worst_completion[a.index]
                             : result.message_worst_completion[a.index];
    slot = slot == kTimeNone ? relative : std::max(slot, relative);
  };

  std::vector<std::size_t> touched_nodes;
  auto complete_activity = [&](ActivityRef a, std::size_t job, Time when) {
    work.push_back(Completion{a, job, when});
    while (!work.empty()) {
      const Completion c = work.back();
      work.pop_back();
      record_completion(c.activity, c.job, c.when);
      for (const ActivityRef s : app.successors(c.activity)) {
        if (s.is_task()) {
          TaskJob& sj = task_jobs[s.index][c.job];
          assert(sj.preds_pending > 0);
          if (--sj.preds_pending == 0) {
            sj.ready_time = std::max(c.when, sj.release);
            if (app.tasks()[s.index].policy == TaskPolicy::Fps) {
              const std::size_t node = node_of_task(s.index);
              cpus[node].ready_fps.insert(ChiEntry{app.tasks()[s.index].priority, sj.ready_time,
                                                   s.index, c.job});
              touched_nodes.push_back(node);
            }
          }
        } else {
          MsgJob& mj = msg_jobs[s.index][c.job];
          mj.sender_done = true;
          mj.ready_time = c.when;
          if (app.messages()[s.index].cls == MessageClass::Dynamic) {
            const int fid = layout.frame_id(static_cast<MessageId>(s.index));
            chi[fid].insert(ChiEntry{app.messages()[s.index].priority, c.when, s.index, c.job});
          }
          // ST messages are replayed from the table; readiness is only used
          // for the precedence check at transmission time.
        }
      }
    }
  };

  // ---- main loop -----------------------------------------------------------
  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    const Time now = ev.time;
    touched_nodes.clear();

    switch (ev.type) {
      case EventType::GraphRelease: {
        for (std::uint32_t t = 0; t < app.task_count(); ++t) {
          if (index_of(app.tasks()[t].graph) != ev.a) continue;
          const Time offset = app.tasks()[t].release_offset;
          if (offset > 0) {
            // Individual release time: the release token arrives later.
            push(Event{now + offset, EventType::TaskRelease, 0, 0, ev.b, 0,
                       static_cast<std::int64_t>(t)});
            continue;
          }
          TaskJob& job = task_jobs[t][ev.b];
          assert(job.preds_pending > 0);
          if (--job.preds_pending == 0) {
            job.ready_time = now;
            if (app.tasks()[t].policy == TaskPolicy::Fps) {
              const std::size_t node = node_of_task(t);
              cpus[node].ready_fps.insert(
                  ChiEntry{app.tasks()[t].priority, now, t, ev.b});
              touched_nodes.push_back(node);
            }
          }
        }
        break;
      }
      case EventType::TaskRelease: {
        const auto t = static_cast<std::uint32_t>(ev.d);
        TaskJob& job = task_jobs[t][ev.b];
        assert(job.preds_pending > 0);
        if (--job.preds_pending == 0) {
          job.ready_time = now;
          if (app.tasks()[t].policy == TaskPolicy::Fps) {
            const std::size_t node = node_of_task(t);
            cpus[node].ready_fps.insert(ChiEntry{app.tasks()[t].priority, now, t, ev.b});
            touched_nodes.push_back(node);
          }
        }
        break;
      }
      case EventType::ScsStart: {
        const auto t = static_cast<std::uint32_t>(ev.d);
        TaskJob& job = task_jobs[t][ev.b];
        if (job.preds_pending != 0) ++result.precedence_violations;
        NodeState& cpu = cpus[ev.a];
        const Time finish = now + app.tasks()[t].wcet;
        cpu.scs_busy_until = std::max(cpu.scs_busy_until, finish);
        touched_nodes.push_back(ev.a);
        break;
      }
      case EventType::ScsFinish: {
        const auto t = static_cast<std::uint32_t>(ev.d);
        TaskJob& job = task_jobs[t][ev.b];
        job.done = true;
        job.completion = now;
        complete_activity(ActivityRef::task(static_cast<TaskId>(t)), ev.b, now);
        touched_nodes.push_back(ev.a);
        break;
      }
      case EventType::FpsFinish: {
        NodeState& cpu = cpus[ev.a];
        if (ev.c != cpu.generation) break;  // stale burst projection
        const auto t = static_cast<std::uint32_t>(ev.d);
        TaskJob& job = task_jobs[t][ev.b];
        job.remaining = 0;
        job.done = true;
        job.completion = now;
        cpu.fps_running = false;
        ++cpu.generation;  // invalidate any other projection
        complete_activity(ActivityRef::task(static_cast<TaskId>(t)), ev.b, now);
        touched_nodes.push_back(ev.a);
        break;
      }
      case EventType::StDelivery: {
        const auto m = static_cast<std::uint32_t>(ev.d);
        MsgJob& job = msg_jobs[m][ev.b];
        if (!job.sender_done) ++result.precedence_violations;
        job.delivered = true;
        job.completion = now;
        if (options.record_trace) {
          const StReplay& r = st_replay[m][ev.b];
          result.trace.push_back(TransmissionRecord{static_cast<MessageId>(m),
                                                    static_cast<int>(ev.b), false, r.slot,
                                                    r.cycle, r.start, r.finish});
        }
        complete_activity(ActivityRef::message(static_cast<MessageId>(m)), ev.b, now);
        break;
      }
      case EventType::DynDelivery: {
        const auto m = static_cast<std::uint32_t>(ev.d);
        MsgJob& job = msg_jobs[m][ev.b];
        job.delivered = true;
        job.completion = now;
        complete_activity(ActivityRef::message(static_cast<MessageId>(m)), ev.b, now);
        break;
      }
      case EventType::DynSlot: {
        const int fid = static_cast<int>(ev.d);
        const std::int64_t counter = ev.c;
        if (fid > layout.max_frame_id() ||
            counter > layout.config().minislot_count) {
          break;  // segment exhausted
        }
        std::int64_t advance = 1;
        NodeId owner{};
        if (layout.frame_id_owner(fid, &owner) &&
            counter <= layout.p_latest_tx(owner)) {
          auto& queue = chi[fid];
          // Pick the highest-priority message that reached the CHI before
          // this slot started.
          auto best = queue.end();
          for (auto it = queue.begin(); it != queue.end(); ++it) {
            if (it->ready <= now) {
              best = it;
              break;  // multiset order = (priority, ready, job)
            }
          }
          if (best != queue.end()) {
            const std::uint32_t m = best->message;
            const std::size_t job_index = best->job;
            const int slots = layout.message_minislots(static_cast<MessageId>(m));
            const Time delivery = now + layout.message_occupancy(static_cast<MessageId>(m));
            push(Event{delivery, EventType::DynDelivery, 0, 0, job_index, 0,
                       static_cast<std::int64_t>(m)});
            if (options.record_trace) {
              result.trace.push_back(TransmissionRecord{
                  static_cast<MessageId>(m), static_cast<int>(job_index), true, fid,
                  now / cycle_len, now, delivery});
            }
            queue.erase(best);
            advance = slots;
          }
        }
        push(Event{now + advance * layout.params().gd_minislot, EventType::DynSlot, 0, 0, 0,
                   counter + advance, static_cast<std::int64_t>(fid) + 1});
        break;
      }
    }

    // Apply deferred CPU recomputations and burst projections.
    std::sort(touched_nodes.begin(), touched_nodes.end());
    touched_nodes.erase(std::unique(touched_nodes.begin(), touched_nodes.end()),
                        touched_nodes.end());
    for (const std::size_t node : touched_nodes) recompute_cpu(node, now);
    for (Event& e : recompute_stack) push(e);
    recompute_stack.clear();
  }

  // ---- unfinished accounting ------------------------------------------------
  for (const auto& vec : task_jobs) {
    for (const auto& j : vec) {
      if (!j.done) ++result.unfinished_jobs;
    }
  }
  for (const auto& vec : msg_jobs) {
    for (const auto& j : vec) {
      if (!j.delivered) ++result.unfinished_jobs;
    }
  }
  return result;
}

}  // namespace flexopt
