#include "flexopt/sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "flexopt/math/hyperperiod.hpp"

namespace flexopt {
namespace {

/// Event kinds, in tie-break order at equal timestamps: completions and
/// deliveries first (they enable work), then releases, then CPU/bus slot
/// boundaries that consume the enabled state.
enum class EventType : int {
  ScsFinish = 0,
  FpsFinish = 1,
  StDelivery = 2,
  DynDelivery = 3,
  GraphRelease = 4,
  TaskRelease = 5,
  ScsStart = 6,
  DynSlot = 7,
  // Appended after DynSlot so the FlexRay tie-break order (and with it the
  // recorded traces) is untouched.  TSN only: serve one egress port's ET
  // queue.  Like DynSlot it consumes enabled state, so it ranks last.
  EtPortService = 8,
};

struct Event {
  Time time = 0;
  EventType type{};
  std::uint64_t seq = 0;
  std::size_t a = 0;   // node / graph index
  std::size_t b = 0;   // job index
  std::int64_t c = 0;  // generation / counter / cycle
  std::int64_t d = 0;  // extra payload (FrameID, …)

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    if (type != other.type) return type > other.type;
    return seq > other.seq;
  }
};

struct TaskJob {
  Time release = 0;
  std::size_t preds_pending = 0;  // predecessor jobs + the release token
  Time ready_time = kTimeNone;
  Time remaining = 0;  // FPS only
  bool done = false;
  Time completion = kTimeNone;
};

struct MsgJob {
  Time release = 0;
  bool sender_done = false;
  Time ready_time = kTimeNone;  // DYN: when handed to the CHI
  bool delivered = false;
  Time completion = kTimeNone;
};

/// Entry in a CHI dynamic send queue.
struct ChiEntry {
  int priority = 0;
  Time ready = 0;
  std::uint32_t message = 0;
  std::size_t job = 0;

  bool operator<(const ChiEntry& o) const {
    if (priority != o.priority) return priority < o.priority;
    if (ready != o.ready) return ready < o.ready;
    return job < o.job;
  }
};

/// Replayed ST transmission window (for trace records).
struct StReplay {
  Time start = 0;
  Time finish = 0;
  std::int64_t cycle = 0;
  int slot = 0;
};

struct NodeState {
  std::multiset<ChiEntry> ready_fps;  // ordered by priority / ready / job
  bool fps_running = false;
  std::uint32_t running_task = 0;
  std::size_t running_job = 0;
  Time burst_start = 0;
  Time scs_busy_until = 0;
  std::int64_t generation = 0;
};

}  // namespace

struct ClusterEngine::Impl {
  // Backend: exactly one of layout / tsn is set.
  const BusLayout* layout = nullptr;
  const TsnLayout* tsn = nullptr;
  const Application* app = nullptr;
  EngineOptions options;
  EngineHooks hooks;
  Time horizon = 0;
  Time cycle_len = 0;

  std::vector<std::vector<TaskJob>> task_jobs;
  std::vector<std::vector<MsgJob>> msg_jobs;
  std::vector<std::vector<StReplay>> st_replay;
  std::vector<std::vector<Time>> scs_starts;  // for next-SCS lookup

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t seq = 0;
  std::uint64_t processed = 0;

  std::vector<NodeState> cpus;
  /// CHI dynamic send queues: keyed by FrameID on FlexRay, by egress-port
  /// node index on TSN (priority = et_priority there).
  std::map<int, std::multiset<ChiEntry>> chi;
  std::vector<Time> port_busy_until;  // TSN only, per node

  SimResult result;
  std::vector<Event> recompute_stack;   // deferred burst projections
  std::vector<std::size_t> touched_nodes;

  void push(Event e) {
    if (e.time >= horizon) return;
    e.seq = seq++;
    events.push(e);
  }

  int hop_of(std::uint32_t m) const {
    return m < options.message_hop_index.size() ? options.message_hop_index[m] : 0;
  }

  std::size_t node_of_task(std::uint32_t t) const { return index_of(app->tasks()[t].node); }

  Time next_scs_start(std::size_t node, Time now) const {
    const auto& starts = scs_starts[node];
    const auto it = std::upper_bound(starts.begin(), starts.end(), now);
    return it == starts.end() ? kTimeInfinity : *it;
  }

  void recompute_cpu(std::size_t node, Time now) {
    NodeState& cpu = cpus[node];
    ++cpu.generation;
    // Preempt whatever FPS job is in a burst; account executed time.
    if (cpu.fps_running) {
      TaskJob& job = task_jobs[cpu.running_task][cpu.running_job];
      job.remaining -= now - cpu.burst_start;
      assert(job.remaining >= 0);
      if (job.remaining > 0) {
        cpu.ready_fps.insert(ChiEntry{app->tasks()[cpu.running_task].priority, job.ready_time,
                                      cpu.running_task, cpu.running_job});
      }
      cpu.fps_running = false;
    }
    if (now < cpu.scs_busy_until) return;  // CPU held by the static table
    if (cpu.ready_fps.empty()) return;
    const ChiEntry top = *cpu.ready_fps.begin();
    cpu.ready_fps.erase(cpu.ready_fps.begin());
    TaskJob& job = task_jobs[top.message][top.job];
    cpu.fps_running = true;
    cpu.running_task = top.message;
    cpu.running_job = top.job;
    cpu.burst_start = now;
    const Time finish = now + job.remaining;
    if (finish <= next_scs_start(node, now)) {
      recompute_stack.push_back(Event{finish, EventType::FpsFinish, 0, node, top.job,
                                      cpu.generation, static_cast<std::int64_t>(top.message)});
    }
    // Otherwise the burst is cut by the next SCS start; that ScsStart event
    // triggers the next recompute.
  }

  void record_completion(ActivityRef a, std::size_t job, Time when) {
    const Time release =
        a.is_task() ? task_jobs[a.index][job].release : msg_jobs[a.index][job].release;
    const Time relative = when - release;
    Time& slot = a.is_task() ? result.task_worst_completion[a.index]
                             : result.message_worst_completion[a.index];
    slot = slot == kTimeNone ? relative : std::max(slot, relative);
  }

  /// Records the completion and propagates readiness to successor jobs.
  void complete_activity(ActivityRef a, std::size_t job, Time when) {
    record_completion(a, job, when);
    for (const ActivityRef s : app->successors(a)) {
      if (s.is_task()) {
        TaskJob& sj = task_jobs[s.index][job];
        assert(sj.preds_pending > 0);
        if (--sj.preds_pending == 0) {
          sj.ready_time = std::max(when, sj.release);
          if (app->tasks()[s.index].policy == TaskPolicy::Fps) {
            const std::size_t node = node_of_task(s.index);
            cpus[node].ready_fps.insert(
                ChiEntry{app->tasks()[s.index].priority, sj.ready_time, s.index, job});
            touched_nodes.push_back(node);
          }
        }
      } else {
        MsgJob& mj = msg_jobs[s.index][job];
        mj.sender_done = true;
        mj.ready_time = when;
        if (app->messages()[s.index].cls == MessageClass::Dynamic) {
          if (tsn != nullptr) {
            const auto port =
                static_cast<int>(tsn->egress_port(static_cast<MessageId>(s.index)));
            chi[port].insert(
                ChiEntry{tsn->config().et_priority[s.index], when, s.index, job});
            // Arm the port; ranks after every same-time completion, so the
            // service decision sees all frames that became ready at `when`.
            push(Event{when, EventType::EtPortService, 0, static_cast<std::size_t>(port), 0, 0,
                       0});
          } else {
            const int fid = layout->frame_id(static_cast<MessageId>(s.index));
            chi[fid].insert(ChiEntry{app->messages()[s.index].priority, when, s.index, job});
          }
        }
        // ST messages are replayed from the table; readiness is only used
        // for the precedence check at transmission time.
      }
    }
  }

  /// Applies deferred CPU recomputations and burst projections at `now`.
  void flush(Time now) {
    std::sort(touched_nodes.begin(), touched_nodes.end());
    touched_nodes.erase(std::unique(touched_nodes.begin(), touched_nodes.end()),
                        touched_nodes.end());
    for (const std::size_t node : touched_nodes) recompute_cpu(node, now);
    touched_nodes.clear();
    for (Event& e : recompute_stack) push(e);
    recompute_stack.clear();
  }

  void mark_task_ready(std::uint32_t t, std::size_t job_index, Time now) {
    TaskJob& job = task_jobs[t][job_index];
    assert(job.preds_pending > 0);
    if (--job.preds_pending == 0) {
      job.ready_time = std::max(now, job.release);
      if (app->tasks()[t].policy == TaskPolicy::Fps) {
        const std::size_t node = node_of_task(t);
        cpus[node].ready_fps.insert(
            ChiEntry{app->tasks()[t].priority, job.ready_time, t, job_index});
        touched_nodes.push_back(node);
      }
    }
  }

  /// Earliest start >= `t` on a TSN egress port such that a frame of
  /// `duration` does not overlap any gate-window occurrence — the simulation
  /// counterpart of the analysis guard band (a frame only starts if it
  /// completes before the next window opens).  Returns kTimeNone when no
  /// inter-window gap ever fits the frame (the port head-of-line blocks).
  Time next_gate_fit(std::size_t port, Time t, Time duration) const {
    const std::span<const Interval> windows = tsn->port_windows(port);
    if (windows.empty()) return t;
    Time pos = t;
    const Time give_up = t + 2 * cycle_len + duration;
    while (pos <= give_up) {
      const Time base = (pos / cycle_len) * cycle_len;
      bool moved = false;
      for (int rep = 0; rep < 2 && !moved; ++rep) {
        const Time shift = base + rep * cycle_len;
        for (const Interval& w : windows) {
          const Time open = shift + w.start;
          const Time close = shift + w.end;
          if (pos >= close) continue;          // occurrence already passed
          if (pos >= open) {                   // inside a window: step out
            pos = close;
            moved = true;
            break;
          }
          if (pos + duration <= open) return pos;  // fits before the window
          pos = close;                         // guard band: idle through it
          moved = true;
          break;
        }
      }
      if (!moved) return pos;  // nothing ahead within two cycles
    }
    return kTimeNone;  // the gaps never fit this frame
  }

  void process(const Event& ev) {
    const Time now = ev.time;
    switch (ev.type) {
      case EventType::GraphRelease: {
        for (std::uint32_t t = 0; t < app->task_count(); ++t) {
          if (index_of(app->tasks()[t].graph) != ev.a) continue;
          const Time offset = app->tasks()[t].release_offset;
          if (offset > 0) {
            // Individual release time: the release token arrives later.
            push(Event{now + offset, EventType::TaskRelease, 0, 0, ev.b, 0,
                       static_cast<std::int64_t>(t)});
            continue;
          }
          mark_task_ready(t, ev.b, now);
        }
        break;
      }
      case EventType::TaskRelease: {
        mark_task_ready(static_cast<std::uint32_t>(ev.d), ev.b, now);
        break;
      }
      case EventType::ScsStart: {
        const auto t = static_cast<std::uint32_t>(ev.d);
        TaskJob& job = task_jobs[t][ev.b];
        if (job.preds_pending != 0) ++result.precedence_violations;
        NodeState& cpu = cpus[ev.a];
        const Time finish = now + app->tasks()[t].wcet;
        cpu.scs_busy_until = std::max(cpu.scs_busy_until, finish);
        touched_nodes.push_back(ev.a);
        break;
      }
      case EventType::ScsFinish: {
        const auto t = static_cast<std::uint32_t>(ev.d);
        TaskJob& job = task_jobs[t][ev.b];
        job.done = true;
        job.completion = now;
        complete_activity(ActivityRef::task(static_cast<TaskId>(t)), ev.b, now);
        touched_nodes.push_back(ev.a);
        if (hooks.task_completed) hooks.task_completed(static_cast<TaskId>(t), ev.b, now);
        break;
      }
      case EventType::FpsFinish: {
        NodeState& cpu = cpus[ev.a];
        if (ev.c != cpu.generation) break;  // stale burst projection
        const auto t = static_cast<std::uint32_t>(ev.d);
        TaskJob& job = task_jobs[t][ev.b];
        job.remaining = 0;
        job.done = true;
        job.completion = now;
        cpu.fps_running = false;
        ++cpu.generation;  // invalidate any other projection
        complete_activity(ActivityRef::task(static_cast<TaskId>(t)), ev.b, now);
        touched_nodes.push_back(ev.a);
        if (hooks.task_completed) hooks.task_completed(static_cast<TaskId>(t), ev.b, now);
        break;
      }
      case EventType::StDelivery: {
        const auto m = static_cast<std::uint32_t>(ev.d);
        MsgJob& job = msg_jobs[m][ev.b];
        if (!job.sender_done) ++result.precedence_violations;
        job.delivered = true;
        job.completion = now;
        if (options.record_trace) {
          const StReplay& r = st_replay[m][ev.b];
          result.trace.push_back(TransmissionRecord{static_cast<MessageId>(m),
                                                    static_cast<int>(ev.b), false, r.slot,
                                                    r.cycle, r.start, r.finish, options.cluster,
                                                    hop_of(m)});
        }
        complete_activity(ActivityRef::message(static_cast<MessageId>(m)), ev.b, now);
        if (hooks.message_delivered) {
          hooks.message_delivered(static_cast<MessageId>(m), ev.b, now);
        }
        break;
      }
      case EventType::DynDelivery: {
        const auto m = static_cast<std::uint32_t>(ev.d);
        MsgJob& job = msg_jobs[m][ev.b];
        job.delivered = true;
        job.completion = now;
        complete_activity(ActivityRef::message(static_cast<MessageId>(m)), ev.b, now);
        if (hooks.message_delivered) {
          hooks.message_delivered(static_cast<MessageId>(m), ev.b, now);
        }
        break;
      }
      case EventType::DynSlot: {
        const int fid = static_cast<int>(ev.d);
        const std::int64_t counter = ev.c;
        if (fid > layout->max_frame_id() || counter > layout->config().minislot_count) {
          break;  // segment exhausted
        }
        std::int64_t advance = 1;
        NodeId owner{};
        if (layout->frame_id_owner(fid, &owner) && counter <= layout->p_latest_tx(owner)) {
          auto& queue = chi[fid];
          // Pick the highest-priority message that reached the CHI before
          // this slot started.
          auto best = queue.end();
          for (auto it = queue.begin(); it != queue.end(); ++it) {
            if (it->ready <= now) {
              best = it;
              break;  // multiset order = (priority, ready, job)
            }
          }
          if (best != queue.end()) {
            const std::uint32_t m = best->message;
            const std::size_t job_index = best->job;
            const int slots = layout->message_minislots(static_cast<MessageId>(m));
            const Time delivery = now + layout->message_occupancy(static_cast<MessageId>(m));
            push(Event{delivery, EventType::DynDelivery, 0, 0, job_index, 0,
                       static_cast<std::int64_t>(m)});
            if (options.record_trace) {
              result.trace.push_back(TransmissionRecord{static_cast<MessageId>(m),
                                                        static_cast<int>(job_index), true, fid,
                                                        now / cycle_len, now, delivery,
                                                        options.cluster, hop_of(m)});
            }
            queue.erase(best);
            advance = slots;
          }
        }
        push(Event{now + advance * layout->params().gd_minislot, EventType::DynSlot, 0, 0, 0,
                   counter + advance, static_cast<std::int64_t>(fid) + 1});
        break;
      }
      case EventType::EtPortService: {
        const std::size_t port = ev.a;
        if (now < port_busy_until[port]) break;  // a service fires at busy_until
        auto& queue = chi[static_cast<int>(port)];
        // Highest-priority frame already handed to the port (multiset order
        // = priority / ready / job — FIFO among equal priorities).
        auto best = queue.end();
        for (auto it = queue.begin(); it != queue.end(); ++it) {
          if (it->ready <= now) {
            best = it;
            break;
          }
        }
        if (best == queue.end()) break;  // re-armed by the next arrival
        const std::uint32_t m = best->message;
        const std::size_t job_index = best->job;
        const Time duration = tsn->duration(static_cast<MessageId>(m));
        const Time start = next_gate_fit(port, now, duration);
        if (start == kTimeNone) break;  // head-of-line blocked forever
        const Time delivery = start + duration;
        port_busy_until[port] = delivery;
        push(Event{delivery, EventType::DynDelivery, 0, 0, job_index, 0,
                   static_cast<std::int64_t>(m)});
        if (options.record_trace) {
          result.trace.push_back(TransmissionRecord{static_cast<MessageId>(m),
                                                    static_cast<int>(job_index), true,
                                                    static_cast<int>(port), start / cycle_len,
                                                    start, delivery, options.cluster, hop_of(m)});
        }
        queue.erase(best);
        // Serve the next frame once this one leaves the wire.  DynDelivery
        // ranks earlier at the same timestamp, so a successor frame enabled
        // by this delivery is already queued when the service runs.
        push(Event{delivery, EventType::EtPortService, 0, port, 0, 0, 0});
        break;
      }
    }
    flush(now);
  }
};

ClusterEngine::ClusterEngine() : impl_(new Impl) {}
ClusterEngine::~ClusterEngine() = default;

Expected<std::unique_ptr<ClusterEngine>> ClusterEngine::create(const BusLayout& layout,
                                                               const StaticSchedule& schedule,
                                                               EngineOptions options,
                                                               EngineHooks hooks) {
  return create_impl(&layout, nullptr, schedule, std::move(options), std::move(hooks));
}

Expected<std::unique_ptr<ClusterEngine>> ClusterEngine::create(const TsnLayout& layout,
                                                               const StaticSchedule& schedule,
                                                               EngineOptions options,
                                                               EngineHooks hooks) {
  return create_impl(nullptr, &layout, schedule, std::move(options), std::move(hooks));
}

Expected<std::unique_ptr<ClusterEngine>> ClusterEngine::create_impl(const BusLayout* bus,
                                                                    const TsnLayout* tsn,
                                                                    const StaticSchedule& schedule,
                                                                    EngineOptions options,
                                                                    EngineHooks hooks) {
  const Application& app = bus != nullptr ? bus->application() : tsn->application();
  const Time H = schedule.hyperperiod();
  const Time cycle_len = bus != nullptr ? bus->cycle_len() : tsn->cycle_len();

  Time horizon = options.horizon;
  if (horizon == 0) {
    if (options.hyperperiods < 1) return make_error("simulate: hyperperiods must be >= 1");
    auto scaled = checked_mul(H, options.hyperperiods);
    if (!scaled.ok()) {
      return make_error("simulate: horizon overflows the 64-bit time range (hyper-period " +
                        std::to_string(H) + " x " + std::to_string(options.hyperperiods) +
                        " hyper-periods); reduce hyperperiods or the period spread");
    }
    horizon = scaled.value();
    if (options.hyperperiods > 1 && H % cycle_len != 0) {
      // The ST table repeats every hyper-period while the DYN minislot grid
      // repeats every bus cycle; when the cycle does not divide the
      // hyper-period the two only co-terminate every lcm.  Round the
      // requested horizon up to that block so neither pattern is truncated.
      auto block = checked_lcm(H, cycle_len);
      if (!block.ok()) {
        return make_error("simulate: lcm(hyper-period " + std::to_string(H) + ", bus cycle " +
                          std::to_string(cycle_len) +
                          ") overflows the 64-bit time range — the periods and the cycle are "
                          "near-coprime; align the cycle to the period grid or simulate one "
                          "hyper-period");
      }
      auto aligned = checked_align_up(horizon, block.value());
      if (!aligned.ok()) {
        return make_error("simulate: aligning the horizon up to lcm(hyper-period, bus cycle) = " +
                          std::to_string(block.value()) +
                          " overflows the 64-bit time range; reduce hyperperiods or align the "
                          "cycle to the period grid");
      }
      horizon = aligned.value();
    }
  }
  if (horizon <= 0 || horizon % H != 0) {
    return make_error("simulate: horizon must be a positive multiple of the hyper-period");
  }
  const Time hyper_count = horizon / H;

  std::unique_ptr<ClusterEngine> engine(new ClusterEngine);
  Impl& im = *engine->impl_;
  im.layout = bus;
  im.tsn = tsn;
  im.app = &app;
  im.options = std::move(options);
  im.hooks = std::move(hooks);
  im.horizon = horizon;
  im.cycle_len = cycle_len;

  // ---- job tables ----------------------------------------------------------
  auto instances_of = [&](Time period) { return static_cast<std::size_t>(horizon / period); };
  im.task_jobs.resize(app.task_count());
  im.msg_jobs.resize(app.message_count());
  for (std::uint32_t t = 0; t < app.task_count(); ++t) {
    const Time period = app.period_of(ActivityRef::task(static_cast<TaskId>(t)));
    auto& vec = im.task_jobs[t];
    vec.resize(instances_of(period));
    const std::size_t preds = app.predecessors(ActivityRef::task(static_cast<TaskId>(t))).size();
    for (std::size_t k = 0; k < vec.size(); ++k) {
      vec[k].release = static_cast<Time>(k) * period;
      vec[k].preds_pending = preds + 1;  // +1: the graph-release token
      vec[k].remaining = app.tasks()[t].wcet;
    }
  }
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    const Time period = app.period_of(ActivityRef::message(static_cast<MessageId>(m)));
    auto& vec = im.msg_jobs[m];
    vec.resize(instances_of(period));
    for (std::size_t k = 0; k < vec.size(); ++k) {
      vec[k].release = static_cast<Time>(k) * period;
    }
  }

  // ---- initial event population -------------------------------------------
  // Graph releases.
  for (std::uint32_t g = 0; g < app.graph_count(); ++g) {
    const Time period = app.graphs()[g].period;
    for (Time r = 0; r < horizon; r += period) {
      im.push(Event{r, EventType::GraphRelease, 0, g, static_cast<std::size_t>(r / period), 0, 0});
    }
  }

  // SCS table entries, repeated every hyper-period.
  im.scs_starts.resize(app.node_count());
  for (std::uint32_t t = 0; t < app.task_count(); ++t) {
    if (app.tasks()[t].policy != TaskPolicy::Scs) continue;
    const std::size_t node = index_of(app.tasks()[t].node);
    const std::size_t per_h = schedule.task_entries(static_cast<TaskId>(t)).size();
    for (Time j = 0; j < hyper_count; ++j) {
      const Time shift = j * H;
      for (const ScheduledTask& e : schedule.task_entries(static_cast<TaskId>(t))) {
        const std::size_t job =
            static_cast<std::size_t>(e.instance) + per_h * static_cast<std::size_t>(j);
        im.push(Event{e.start + shift, EventType::ScsStart, 0, node, job, 0,
                      static_cast<std::int64_t>(t)});
        im.push(Event{e.finish + shift, EventType::ScsFinish, 0, node, job, 0,
                      static_cast<std::int64_t>(t)});
        im.scs_starts[node].push_back(e.start + shift);
      }
    }
  }
  for (auto& starts : im.scs_starts) std::sort(starts.begin(), starts.end());

  // ST message deliveries replayed from the table (hyper-period-periodic,
  // exactly the analysis model of the static segment).
  im.st_replay.resize(app.message_count());
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (app.messages()[m].cls != MessageClass::Static) continue;
    const std::size_t per_h = schedule.message_entries(static_cast<MessageId>(m)).size();
    im.st_replay[m].resize(im.msg_jobs[m].size());
    for (Time j = 0; j < hyper_count; ++j) {
      const Time shift = j * H;
      for (const ScheduledMessage& e : schedule.message_entries(static_cast<MessageId>(m))) {
        const std::size_t job =
            static_cast<std::size_t>(e.instance) + per_h * static_cast<std::size_t>(j);
        if (job >= im.msg_jobs[m].size()) continue;
        im.st_replay[m][job] =
            StReplay{e.start + shift, e.finish + shift, (e.start + shift) / cycle_len, e.slot};
        im.push(Event{e.finish + shift, EventType::StDelivery, 0, 0, job, 0,
                      static_cast<std::int64_t>(m)});
      }
    }
  }

  // DYN segment walkers: one chain of DynSlot events per bus cycle.  TSN
  // needs none — ports are event-driven (EtPortService is armed by each
  // frame arrival and re-armed after each transmission).
  if (bus != nullptr && bus->max_frame_id() > 0) {
    for (Time c = 0; c * cycle_len < horizon; ++c) {
      im.push(Event{c * cycle_len + bus->st_segment_len(), EventType::DynSlot, 0, 0, 0,
                    /*counter=*/1, /*fid=*/1});
    }
  }

  im.cpus.resize(app.node_count());
  im.port_busy_until.assign(app.node_count(), 0);
  im.result.task_worst_completion.assign(app.task_count(), kTimeNone);
  im.result.message_worst_completion.assign(app.message_count(), kTimeNone);
  return engine;
}

bool ClusterEngine::done() const { return impl_->events.empty(); }

Time ClusterEngine::next_time() const {
  return impl_->events.empty() ? kTimeInfinity : impl_->events.top().time;
}

int ClusterEngine::next_order() const {
  return impl_->events.empty() ? static_cast<int>(EventType::EtPortService) + 1
                               : static_cast<int>(impl_->events.top().type);
}

void ClusterEngine::process_next() {
  Impl& im = *impl_;
  assert(!im.events.empty());
  const Event ev = im.events.top();
  im.events.pop();
  ++im.processed;
  im.process(ev);
}

void ClusterEngine::gate_task(TaskId task) {
  for (TaskJob& job : impl_->task_jobs[index_of(task)]) ++job.preds_pending;
}

void ClusterEngine::release_gated(TaskId task, std::size_t job, Time now) {
  Impl& im = *impl_;
  if (job >= im.task_jobs[index_of(task)].size()) return;
  im.mark_task_ready(static_cast<std::uint32_t>(index_of(task)), job, now);
  im.flush(now);
}

Time ClusterEngine::horizon() const { return impl_->horizon; }

std::uint64_t ClusterEngine::events_processed() const { return impl_->processed; }

SimResult ClusterEngine::finish() {
  Impl& im = *impl_;
  for (const auto& vec : im.task_jobs) {
    for (const auto& j : vec) {
      if (!j.done) ++im.result.unfinished_jobs;
    }
  }
  for (const auto& vec : im.msg_jobs) {
    for (const auto& j : vec) {
      if (!j.delivered) ++im.result.unfinished_jobs;
    }
  }
  return std::move(im.result);
}

}  // namespace flexopt
