#pragma once

/// \file trace_json.hpp
/// Deterministic JSON serialization of a network-simulation run — the
/// `flexopt-netsim-trace/1` schema.  Byte-identical output for identical
/// inputs (flexopt/io/json_writer.hpp), so CI and the property suites can
/// diff repeated runs directly.
///
/// Document layout (fixed key order):
///   schema, clusters, hyperperiods, horizon, events, unfinished_jobs,
///   precedence_violations, sound, checked, mean_gap, min_gap,
///   violations[], tasks[], messages[], gateways[], traces[]
/// Times are integer Time units; kTimeNone / kTimeInfinity serialize as
/// null.  `tasks` and `messages` carry the observed worst completion, the
/// analysed bound and the observed latency distribution per *global*
/// activity; `traces` (record_trace runs only) carries per-instance
/// HopRecord chains.

#include <string>

#include "flexopt/netsim/netsim.hpp"

namespace flexopt {

[[nodiscard]] std::string write_netsim_trace_json(const SystemModel& model,
                                                  const MulticlusterResult& analysis,
                                                  const NetSimResult& result,
                                                  const SoundnessReport& soundness,
                                                  int hyperperiods);

}  // namespace flexopt
