#pragma once

/// \file netsim.hpp
/// Discrete-event simulation of a gateway-connected multi-cluster system:
/// one ClusterEngine (flexopt/sim/engine.hpp) per FlexRay cluster — each a
/// timed channel driven by its ST schedule table plus FTDMA minislot
/// arbitration — advanced on one merged event order, with gateway routers
/// coupling the engines.  A cross-cluster message is simulated exactly as
/// the system model projects it: the hop frame is delivered on the upstream
/// bus, the gateway's receive relay completes, the frame enters the
/// gateway's bounded forwarding queue, and the downstream forwarding relay
/// (held back by an engine gate until the upstream receive completes) sends
/// the next hop frame.
///
/// The simulator is the executable ground truth for analyze_multicluster:
/// check_soundness() verifies that every observed completion is dominated
/// by the analysed bound and quantifies the pessimism gap, and
/// write_netsim_trace_json (trace_json.hpp) serializes per-hop latency
/// traces as the deterministic `flexopt-netsim-trace/1` schema.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "flexopt/analysis/multicluster.hpp"
#include "flexopt/model/system_model.hpp"
#include "flexopt/sim/simulator.hpp"
#include "flexopt/util/expected.hpp"

namespace flexopt {

struct NetSimOptions {
  /// Hyper-periods to simulate.  Values > 1 align the horizon up to a
  /// multiple of lcm(hyper-period, every cluster's bus cycle) so all ST
  /// tables and DYN cycle grids co-terminate; every cluster engine runs
  /// the same horizon to keep job indices aligned across clusters.
  int hyperperiods = 1;
  /// Record per-cluster bus transmissions and build per-hop MessageTrace
  /// records.
  bool record_trace = false;
  /// Frames a gateway may hold per outgoing transition before the
  /// simulation counts an overflow.  Frames are never dropped (the
  /// analysis assumes lossless forwarding); the counter flags undersized
  /// gateway buffers.
  int gateway_queue_capacity = 64;
};

/// One bus traversal of one message instance along its cluster route.
struct HopRecord {
  std::uint32_t cluster = 0;
  int hop_index = 0;
  /// When the frame entered this cluster: the job release for hop 0, the
  /// upstream bus delivery for later hops.
  Time enter = 0;
  /// Gateway residence (enter -> forwarding-relay completion); 0 for hop 0.
  Time gateway_wait = 0;
  Time bus_start = 0;
  Time bus_finish = 0;
  /// ST: 0-based slot index; DYN: FrameID (on this hop's cluster).
  int slot = 0;
  bool dynamic = false;
};

/// Per-hop trace of one message instance (record_trace only).
struct MessageTrace {
  MessageId message{};  ///< global MessageId
  int instance = 0;
  std::vector<HopRecord> hops;
};

/// Forwarding statistics of one gateway transition (one RelayLink).
struct GatewayStats {
  NodeId gateway{};
  std::uint32_t from_cluster = 0;
  std::uint32_t to_cluster = 0;
  int max_queue_depth = 0;
  std::int64_t forwarded = 0;
  /// Enqueues that found the queue already at capacity.
  std::int64_t overflows = 0;
};

/// Observed completion-latency distribution of one sink (graph-relative
/// times in Time units; zero count when no instance completed).
struct LatencyStat {
  std::size_t count = 0;
  double min = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

struct NetSimResult {
  /// Worst observed graph-relative completion per *global* task; kTimeNone
  /// when no instance completed within the horizon.
  std::vector<Time> task_worst_completion;
  /// Worst observed *end-to-end* completion per global message — the
  /// delivery of its final hop frame, relative to the job release.
  std::vector<Time> message_worst_completion;
  /// Observed latency distributions per global task / message.
  std::vector<LatencyStat> task_latency;
  std::vector<LatencyStat> message_latency;
  /// Per-cluster kernel results (local activity indices; traces carry the
  /// cluster and hop_index stamps).
  std::vector<SimResult> clusters;
  /// Per-instance hop traces of every global message (record_trace only).
  std::vector<MessageTrace> traces;
  /// One entry per gateway transition, in relay-link order.
  std::vector<GatewayStats> gateways;
  Time horizon = 0;
  std::uint64_t events = 0;
  int unfinished_jobs = 0;
  int precedence_violations = 0;
};

/// Simulates the whole cluster network.  `layouts` and `analysis` must come
/// from build_system_layouts / analyze_multicluster on the same model (the
/// per-cluster ST schedules are replayed from `analysis`).  The degenerate
/// single-cluster case is exactly simulate() plus the global aggregation.
Expected<NetSimResult> simulate_network(const SystemModel& model,
                                        std::span<const ClusterLayout> layouts,
                                        const MulticlusterResult& analysis,
                                        const NetSimOptions& options = {});

/// One activity whose observed completion exceeded its analysed bound.
struct SoundnessViolation {
  std::uint32_t cluster = 0;
  bool task = false;
  std::string name;
  Time observed = 0;
  Time bound = 0;
};

/// Verdict of the observed-vs-bound cross-check, plus the pessimism gap
/// (bound - observed) / bound aggregated over every activity with a finite
/// bound and an observed completion.
struct SoundnessReport {
  bool sound = true;
  /// Cluster-local activities with an observed completion.
  std::size_t checked = 0;
  std::vector<SoundnessViolation> violations;
  double mean_gap = 0.0;
  double min_gap = 0.0;
  std::size_t gap_samples = 0;
};

/// Checks every cluster-local activity (tasks, relay tasks, hop messages)
/// of `observed` against the analyse bounds.
SoundnessReport check_soundness(const SystemModel& model, const MulticlusterResult& analysis,
                                const NetSimResult& observed);

}  // namespace flexopt
