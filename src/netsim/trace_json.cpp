#include "flexopt/netsim/trace_json.hpp"

#include <cmath>

#include "flexopt/io/json_writer.hpp"

namespace flexopt {
namespace {

/// Times serialize as integers; the two sentinels as explicit null.
void time_field(JsonWriter& writer, std::string_view name, Time t) {
  writer.key(name);
  if (t == kTimeNone || t == kTimeInfinity) {
    writer.null_value();
  } else {
    writer.value(static_cast<long long>(t));
  }
}

/// A latency statistic that is undefined (NaN/Inf — e.g. computed over a
/// poisoned sample) must not leak into the document as a number; emit it
/// as explicit null so downstream readers see "absent", never garbage.
void stat_field(JsonWriter& writer, std::string_view name, double v) {
  writer.key(name);
  if (std::isfinite(v)) {
    writer.value(v);
  } else {
    writer.null_value();
  }
}

void latency_field(JsonWriter& writer, const LatencyStat& stat) {
  writer.key("latency").begin_object();
  writer.field("count", static_cast<unsigned long long>(stat.count));
  if (stat.count > 0) {
    stat_field(writer, "min", stat.min);
    stat_field(writer, "mean", stat.mean);
    stat_field(writer, "p50", stat.p50);
    stat_field(writer, "p99", stat.p99);
    stat_field(writer, "max", stat.max);
  }
  writer.end_object();
}

}  // namespace

std::string write_netsim_trace_json(const SystemModel& model,
                                    const MulticlusterResult& analysis,
                                    const NetSimResult& result,
                                    const SoundnessReport& soundness, int hyperperiods) {
  const Application& global = *model.global();
  JsonWriter writer;
  writer.begin_object();
  writer.field("schema", "flexopt-netsim-trace/1");
  writer.field("clusters", static_cast<unsigned long long>(model.cluster_count()));
  writer.field("hyperperiods", hyperperiods);
  writer.field("horizon", static_cast<long long>(result.horizon));
  writer.field("events", static_cast<unsigned long long>(result.events));
  writer.field("unfinished_jobs", result.unfinished_jobs);
  writer.field("precedence_violations", result.precedence_violations);
  writer.field("sound", soundness.sound);
  writer.field("checked", static_cast<unsigned long long>(soundness.checked));
  writer.field("mean_gap", soundness.mean_gap);
  writer.field("min_gap", soundness.min_gap);

  writer.key("violations").begin_array();
  for (const SoundnessViolation& v : soundness.violations) {
    writer.begin_object();
    writer.field("cluster", v.cluster);
    writer.field("kind", v.task ? "task" : "message");
    writer.field("name", v.name);
    time_field(writer, "observed", v.observed);
    time_field(writer, "bound", v.bound);
    writer.end_object();
  }
  writer.end_array();

  writer.key("tasks").begin_array();
  for (std::uint32_t t = 0; t < global.task_count(); ++t) {
    const LocalActivity& local = model.local_task(static_cast<TaskId>(t));
    writer.begin_object();
    writer.field("name", global.tasks()[t].name);
    writer.field("cluster", local.cluster);
    time_field(writer, "observed", result.task_worst_completion[t]);
    time_field(writer, "bound", analysis.clusters[local.cluster].task_completion[local.index]);
    latency_field(writer, result.task_latency[t]);
    writer.end_object();
  }
  writer.end_array();

  writer.key("messages").begin_array();
  for (std::uint32_t m = 0; m < global.message_count(); ++m) {
    const auto& hops = model.message_hops(static_cast<MessageId>(m));
    const LocalActivity& last = hops.back();
    writer.begin_object();
    writer.field("name", global.messages()[m].name);
    writer.field("hops", static_cast<unsigned long long>(hops.size()));
    time_field(writer, "observed", result.message_worst_completion[m]);
    time_field(writer, "bound", analysis.clusters[last.cluster].message_completion[last.index]);
    latency_field(writer, result.message_latency[m]);
    writer.end_object();
  }
  writer.end_array();

  writer.key("gateways").begin_array();
  for (const GatewayStats& gw : result.gateways) {
    writer.begin_object();
    writer.field("gateway", global.nodes()[index_of(gw.gateway)].name);
    writer.field("from_cluster", gw.from_cluster);
    writer.field("to_cluster", gw.to_cluster);
    writer.field("max_queue_depth", gw.max_queue_depth);
    writer.field("forwarded", static_cast<long long>(gw.forwarded));
    writer.field("overflows", static_cast<long long>(gw.overflows));
    writer.end_object();
  }
  writer.end_array();

  writer.key("traces").begin_array();
  for (const MessageTrace& trace : result.traces) {
    writer.begin_object();
    writer.field("message", global.messages()[index_of(trace.message)].name);
    writer.field("instance", trace.instance);
    writer.key("hops").begin_array();
    for (const HopRecord& hop : trace.hops) {
      writer.begin_object();
      writer.field("cluster", hop.cluster);
      writer.field("hop", hop.hop_index);
      time_field(writer, "enter", hop.enter);
      time_field(writer, "gateway_wait", hop.gateway_wait);
      time_field(writer, "bus_start", hop.bus_start);
      time_field(writer, "bus_finish", hop.bus_finish);
      writer.field("slot", hop.slot);
      writer.field("dynamic", hop.dynamic);
      writer.end_object();
    }
    writer.end_array();
    writer.end_object();
  }
  writer.end_array();

  writer.end_object();
  return writer.str() + "\n";
}

}  // namespace flexopt
