#include "flexopt/netsim/netsim.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "flexopt/math/hyperperiod.hpp"
#include "flexopt/math/stats.hpp"
#include "flexopt/sim/engine.hpp"

namespace flexopt {
namespace {

constexpr std::uint32_t kNoGlobal = std::numeric_limits<std::uint32_t>::max();

/// Where a cluster-local message sits in a global message's route.
struct HopRef {
  std::uint32_t global = kNoGlobal;
  int hop = 0;
  bool final_hop = false;
};

/// One gateway transition's runtime state: the bounded forwarding queue of
/// the router object plus the per-job times the trace builder needs.
struct RouterState {
  int depth = 0;
  GatewayStats stats;
  std::vector<Time> arrival;   ///< per job: upstream hop frame delivered
  std::vector<Time> forwarded; ///< per job: downstream forwarding relay done
};

LatencyStat make_latency_stat(std::vector<double>& samples) {
  LatencyStat stat;
  if (samples.empty()) return stat;
  // One sort feeds both quantiles; percentile() would re-copy and re-sort
  // the sample per call.  percentile_sorted's p50 equals the true median
  // for even sample counts too (see math/stats.hpp).
  std::sort(samples.begin(), samples.end());
  const Summary summary = summarize(samples);
  stat.count = summary.count;
  stat.min = summary.min;
  stat.mean = summary.mean;
  stat.max = summary.max;
  stat.p50 = percentile_sorted(samples, 50.0);
  stat.p99 = percentile_sorted(samples, 99.0);
  return stat;
}

}  // namespace

Expected<NetSimResult> simulate_network(const SystemModel& model,
                                        std::span<const ClusterLayout> layouts,
                                        const MulticlusterResult& analysis,
                                        const NetSimOptions& options) {
  const std::size_t clusters = model.cluster_count();
  if (layouts.size() != clusters || analysis.clusters.size() != clusters) {
    return make_error("simulate_network: layouts/analysis do not match the model");
  }
  if (options.hyperperiods < 1) {
    return make_error("simulate_network: hyperperiods must be >= 1");
  }
  const Application& global = *model.global();
  const Time H = analysis.clusters[0].schedule().hyperperiod();

  // One shared horizon: every projection carries every graph, so all
  // clusters agree on H and job tables stay index-compatible.  For multi
  // hyper-period runs, align up so every cluster's cycle grid and the ST
  // tables co-terminate.
  auto scaled = checked_mul(H, options.hyperperiods);
  if (!scaled.ok()) {
    return make_error("simulate_network: horizon overflows the 64-bit time range (hyper-period " +
                      std::to_string(H) + " x " + std::to_string(options.hyperperiods) +
                      " hyper-periods); reduce hyperperiods or the period spread");
  }
  Time horizon = scaled.value();
  if (options.hyperperiods > 1) {
    Time block = H;
    for (const ClusterLayout& layout : layouts) {
      auto lcm = checked_lcm(block, layout.cycle_len());
      if (!lcm.ok()) {
        return make_error(
            "simulate_network: lcm of the hyper-period and the cluster cycles overflows the "
            "64-bit time range — near-coprime cycle lengths; align the cycles to the period "
            "grid or simulate one hyper-period");
      }
      block = lcm.value();
    }
    auto aligned = checked_align_up(horizon, block);
    if (!aligned.ok()) {
      return make_error("simulate_network: aligning the horizon up to the common cycle block " +
                        std::to_string(block) +
                        " overflows the 64-bit time range; reduce hyperperiods or align the "
                        "cluster cycles to the period grid");
    }
    horizon = aligned.value();
  }

  // ---- static routing tables ----------------------------------------------
  // Local task -> global task (kNoGlobal for relay tasks).
  std::vector<std::vector<std::uint32_t>> task_global(clusters);
  // Local task -> relay link it is the upstream receive / downstream
  // forwarding relay of (one past link count = none).
  const std::size_t no_link = model.relay_links().size();
  std::vector<std::vector<std::size_t>> recv_link(clusters), send_link(clusters);
  // Local message -> position in its global message's route.
  std::vector<std::vector<HopRef>> hop_ref(clusters);
  // Local message ordinal along the route, for TransmissionRecord stamps.
  std::vector<std::vector<int>> hop_index(clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    const Application& app = *model.cluster_app(c);
    task_global[c].assign(app.task_count(), kNoGlobal);
    recv_link[c].assign(app.task_count(), no_link);
    send_link[c].assign(app.task_count(), no_link);
    hop_ref[c].assign(app.message_count(), HopRef{});
    hop_index[c].assign(app.message_count(), 0);
  }
  for (std::uint32_t t = 0; t < global.task_count(); ++t) {
    const LocalActivity& local = model.local_task(static_cast<TaskId>(t));
    task_global[local.cluster][local.index] = t;
  }
  for (std::uint32_t m = 0; m < global.message_count(); ++m) {
    const auto& hops = model.message_hops(static_cast<MessageId>(m));
    for (std::size_t j = 0; j < hops.size(); ++j) {
      HopRef& ref = hop_ref[hops[j].cluster][hops[j].index];
      ref.global = m;
      ref.hop = static_cast<int>(j);
      ref.final_hop = j + 1 == hops.size();
      hop_index[hops[j].cluster][hops[j].index] = static_cast<int>(j);
    }
  }
  // Hop message delivered on the upstream bus -> which transition's router
  // receives the frame.
  std::vector<std::vector<std::size_t>> msg_link(clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    msg_link[c].assign(model.cluster_app(c)->message_count(), no_link);
  }
  std::vector<RouterState> routers(model.relay_links().size());
  for (std::size_t l = 0; l < model.relay_links().size(); ++l) {
    const RelayLink& link = model.relay_links()[l];
    recv_link[link.upstream_cluster][index_of(link.upstream_recv)] = l;
    send_link[link.downstream_cluster][index_of(link.downstream_send)] = l;
    const auto& hops = model.message_hops(link.global_message);
    msg_link[link.upstream_cluster][hops[link.transition].index] = l;
    RouterState& router = routers[l];
    router.stats.gateway = link.gateway;
    router.stats.from_cluster = link.upstream_cluster;
    router.stats.to_cluster = link.downstream_cluster;
    const Time period =
        global.period_of(ActivityRef::message(link.global_message));
    const std::size_t jobs = static_cast<std::size_t>(horizon / period);
    router.arrival.assign(jobs, kTimeNone);
    router.forwarded.assign(jobs, kTimeNone);
  }

  // ---- engines -------------------------------------------------------------
  NetSimResult result;
  result.horizon = horizon;
  result.task_worst_completion.assign(global.task_count(), kTimeNone);
  result.message_worst_completion.assign(global.message_count(), kTimeNone);
  std::vector<std::vector<double>> task_samples(global.task_count());
  std::vector<std::vector<double>> message_samples(global.message_count());

  std::vector<std::unique_ptr<ClusterEngine>> engines(clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    EngineOptions engine_options;
    engine_options.horizon = horizon;
    engine_options.record_trace = options.record_trace;
    engine_options.cluster = static_cast<std::uint32_t>(c);
    engine_options.message_hop_index = hop_index[c];

    EngineHooks hooks;
    hooks.task_completed = [&, c](TaskId task, std::size_t job, Time when) {
      const std::uint32_t local = static_cast<std::uint32_t>(index_of(task));
      const std::uint32_t g = task_global[c][local];
      if (g != kNoGlobal) {
        const Time release =
            static_cast<Time>(job) *
            model.cluster_app(c)->period_of(ActivityRef::task(task));
        task_samples[g].push_back(static_cast<double>(when - release));
      }
      const std::size_t recv = recv_link[c][local];
      if (recv != no_link) {
        // Upstream receive relay done: release the gated forwarding relay
        // of the same job in the downstream cluster.
        const RelayLink& link = model.relay_links()[recv];
        engines[link.downstream_cluster]->release_gated(link.downstream_send, job, when);
      }
      const std::size_t send = send_link[c][local];
      if (send != no_link) {
        // Forwarding relay done: the frame left this router's queue.
        RouterState& router = routers[send];
        --router.depth;
        ++router.stats.forwarded;
        if (job < router.forwarded.size()) router.forwarded[job] = when;
      }
    };
    hooks.message_delivered = [&, c](MessageId message, std::size_t job, Time when) {
      const std::uint32_t local = static_cast<std::uint32_t>(index_of(message));
      const HopRef& ref = hop_ref[c][local];
      if (ref.global != kNoGlobal && ref.final_hop) {
        const Time release =
            static_cast<Time>(job) *
            model.cluster_app(c)->period_of(ActivityRef::message(message));
        message_samples[ref.global].push_back(static_cast<double>(when - release));
      }
      const std::size_t l = msg_link[c][local];
      if (l != no_link) {
        // The hop frame reached the gateway port: enqueue for forwarding.
        RouterState& router = routers[l];
        if (router.depth >= options.gateway_queue_capacity) ++router.stats.overflows;
        ++router.depth;
        router.stats.max_queue_depth = std::max(router.stats.max_queue_depth, router.depth);
        if (job < router.arrival.size()) router.arrival[job] = when;
      }
    };

    auto engine =
        layouts[c].kind() == ClusterBackendKind::Tsn
            ? ClusterEngine::create(layouts[c].tsn(), analysis.clusters[c].schedule(),
                                    std::move(engine_options), std::move(hooks))
            : ClusterEngine::create(layouts[c].flexray(), analysis.clusters[c].schedule(),
                                    std::move(engine_options), std::move(hooks));
    if (!engine.ok()) return engine.error();
    engines[c] = std::move(engine).value();
  }

  // Gate every forwarding relay: its trigger (the upstream receive relay)
  // lives in another cluster, so the projection gives it no predecessor.
  for (const RelayLink& link : model.relay_links()) {
    engines[link.downstream_cluster]->gate_task(link.downstream_send);
  }

  // ---- merged event loop ---------------------------------------------------
  // Global order: (time, engine event rank, cluster index) — within one
  // engine this is exactly its stand-alone order, so the single-cluster
  // network degenerates to simulate().
  while (true) {
    std::size_t best = clusters;
    Time best_time = kTimeInfinity;
    int best_order = 0;
    for (std::size_t c = 0; c < clusters; ++c) {
      if (engines[c]->done()) continue;
      const Time t = engines[c]->next_time();
      const int order = engines[c]->next_order();
      if (best == clusters || t < best_time || (t == best_time && order < best_order)) {
        best = c;
        best_time = t;
        best_order = order;
      }
    }
    if (best == clusters) break;
    engines[best]->process_next();
  }

  // ---- aggregation ---------------------------------------------------------
  result.clusters.reserve(clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    result.events += engines[c]->events_processed();
    SimResult cluster_result = engines[c]->finish();
    cluster_result.horizon = horizon;
    result.unfinished_jobs += cluster_result.unfinished_jobs;
    result.precedence_violations += cluster_result.precedence_violations;
    result.clusters.push_back(std::move(cluster_result));
  }
  for (std::uint32_t t = 0; t < global.task_count(); ++t) {
    const LocalActivity& local = model.local_task(static_cast<TaskId>(t));
    result.task_worst_completion[t] =
        result.clusters[local.cluster].task_worst_completion[local.index];
  }
  for (std::uint32_t m = 0; m < global.message_count(); ++m) {
    const auto& hops = model.message_hops(static_cast<MessageId>(m));
    const LocalActivity& last = hops.back();
    result.message_worst_completion[m] =
        result.clusters[last.cluster].message_worst_completion[last.index];
  }
  result.task_latency.resize(global.task_count());
  result.message_latency.resize(global.message_count());
  for (std::uint32_t t = 0; t < global.task_count(); ++t) {
    result.task_latency[t] = make_latency_stat(task_samples[t]);
  }
  for (std::uint32_t m = 0; m < global.message_count(); ++m) {
    result.message_latency[m] = make_latency_stat(message_samples[m]);
  }
  for (const RouterState& router : routers) result.gateways.push_back(router.stats);

  // ---- per-hop traces ------------------------------------------------------
  if (options.record_trace) {
    // Transmissions by (cluster, local message, instance).
    std::vector<std::map<std::pair<std::uint32_t, int>, const TransmissionRecord*>> index(
        clusters);
    for (std::size_t c = 0; c < clusters; ++c) {
      for (const TransmissionRecord& record : result.clusters[c].trace) {
        index[c][{static_cast<std::uint32_t>(index_of(record.message)), record.instance}] =
            &record;
      }
    }
    for (std::uint32_t m = 0; m < global.message_count(); ++m) {
      const auto& hops = model.message_hops(static_cast<MessageId>(m));
      const Time period = global.period_of(ActivityRef::message(static_cast<MessageId>(m)));
      const std::size_t jobs = static_cast<std::size_t>(horizon / period);
      for (std::size_t k = 0; k < jobs; ++k) {
        MessageTrace trace;
        trace.message = static_cast<MessageId>(m);
        trace.instance = static_cast<int>(k);
        Time previous_finish = static_cast<Time>(k) * period;
        for (std::size_t j = 0; j < hops.size(); ++j) {
          const auto it = index[hops[j].cluster].find({hops[j].index, static_cast<int>(k)});
          if (it == index[hops[j].cluster].end()) break;  // undelivered within horizon
          const TransmissionRecord& record = *it->second;
          HopRecord hop;
          hop.cluster = hops[j].cluster;
          hop.hop_index = static_cast<int>(j);
          hop.enter = previous_finish;
          if (j > 0) {
            const std::size_t l = msg_link[hops[j - 1].cluster][hops[j - 1].index];
            const Time done = l != no_link && k < routers[l].forwarded.size()
                                  ? routers[l].forwarded[k]
                                  : kTimeNone;
            hop.gateway_wait = done == kTimeNone ? 0 : done - hop.enter;
          }
          hop.bus_start = record.start;
          hop.bus_finish = record.finish;
          hop.slot = record.slot;
          hop.dynamic = record.dynamic;
          previous_finish = record.finish;
          trace.hops.push_back(hop);
        }
        if (!trace.hops.empty()) result.traces.push_back(std::move(trace));
      }
    }
  }
  return result;
}

SoundnessReport check_soundness(const SystemModel& model, const MulticlusterResult& analysis,
                                const NetSimResult& observed) {
  SoundnessReport report;
  double gap_sum = 0.0;
  report.min_gap = std::numeric_limits<double>::infinity();
  auto check = [&](std::uint32_t cluster, bool is_task, const std::string& name, Time seen,
                   Time bound) {
    if (seen == kTimeNone) return;
    ++report.checked;
    if (seen > bound) {
      report.sound = false;
      report.violations.push_back(
          SoundnessViolation{cluster, is_task, name, seen, bound});
    }
    if (bound > 0 && bound != kTimeInfinity) {
      const double gap =
          static_cast<double>(bound - seen) / static_cast<double>(bound);
      gap_sum += gap;
      report.min_gap = std::min(report.min_gap, gap);
      ++report.gap_samples;
    }
  };
  for (std::size_t c = 0; c < model.cluster_count(); ++c) {
    const Application& app = *model.cluster_app(c);
    const AnalysisResult& bounds = analysis.clusters[c];
    const SimResult& seen = observed.clusters[c];
    for (std::uint32_t t = 0; t < app.task_count(); ++t) {
      check(static_cast<std::uint32_t>(c), true, app.tasks()[t].name,
            seen.task_worst_completion[t], bounds.task_completion[t]);
    }
    for (std::uint32_t m = 0; m < app.message_count(); ++m) {
      check(static_cast<std::uint32_t>(c), false, app.messages()[m].name,
            seen.message_worst_completion[m], bounds.message_completion[m]);
    }
  }
  report.mean_gap = report.gap_samples > 0 ? gap_sum / static_cast<double>(report.gap_samples)
                                           : 0.0;
  if (report.gap_samples == 0) report.min_gap = 0.0;
  return report;
}

}  // namespace flexopt
