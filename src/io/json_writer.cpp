#include "flexopt/io/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace flexopt {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  scopes_.push_back(Scope::Object);
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (scopes_.empty() || scopes_.back() != Scope::Object || key_pending_) {
    throw std::logic_error("JsonWriter: unbalanced end_object");
  }
  const bool had_members = counts_.back() > 0;
  scopes_.pop_back();
  counts_.pop_back();
  if (had_members) {
    out_ << '\n';
    indent();
  }
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  scopes_.push_back(Scope::Array);
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (scopes_.empty() || scopes_.back() != Scope::Array) {
    throw std::logic_error("JsonWriter: unbalanced end_array");
  }
  const bool had_members = counts_.back() > 0;
  scopes_.pop_back();
  counts_.pop_back();
  if (had_members) {
    out_ << '\n';
    indent();
  }
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (scopes_.empty() || scopes_.back() != Scope::Object || key_pending_) {
    throw std::logic_error("JsonWriter: key() outside an object member slot");
  }
  if (counts_.back() > 0) out_ << ',';
  out_ << '\n';
  ++counts_.back();
  indent();
  out_ << '"' << json_escape(name) << "\": ";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  out_ << '"' << json_escape(text) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  out_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  before_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long v) {
  before_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ << json_double(v);
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  before_value();
  out_ << "null";
  return *this;
}

void JsonWriter::before_value() {
  if (scopes_.empty()) {
    if (!out_.str().empty()) {
      throw std::logic_error("JsonWriter: multiple top-level values");
    }
    return;
  }
  if (scopes_.back() == Scope::Object) {
    if (!key_pending_) throw std::logic_error("JsonWriter: object member without key");
    key_pending_ = false;
    return;
  }
  // Array element.
  if (counts_.back() > 0) out_ << ',';
  out_ << '\n';
  ++counts_.back();
  indent();
}

void JsonWriter::indent() {
  for (std::size_t i = 0; i < scopes_.size(); ++i) out_ << "  ";
}

std::string JsonWriter::str() const {
  if (!scopes_.empty()) throw std::logic_error("JsonWriter: document still open");
  return out_.str() + "\n";
}

}  // namespace flexopt
