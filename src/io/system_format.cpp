#include "flexopt/io/system_format.hpp"

#include <cctype>
#include <istream>
#include <map>
#include <sstream>
#include <vector>

namespace flexopt {
namespace {

/// key=value token split; returns false if there is no '='.
bool split_kv(const std::string& token, std::string* key, std::string* value) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) return false;
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

Expected<int> parse_int(const std::string& text) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(text, &used);
    if (used != text.size()) return make_error("trailing characters in integer '" + text + "'");
    return v;
  } catch (const std::exception&) {
    return make_error("invalid integer '" + text + "'");
  }
}

}  // namespace

Expected<Time> parse_duration(const std::string& text) {
  if (text.empty()) return make_error("empty duration");
  std::size_t pos = 0;
  while (pos < text.size() && (std::isdigit(static_cast<unsigned char>(text[pos])) != 0)) {
    ++pos;
  }
  if (pos == 0) return make_error("invalid duration '" + text + "'");
  std::int64_t value = 0;
  try {
    value = std::stoll(text.substr(0, pos));
  } catch (const std::exception&) {
    return make_error("invalid duration '" + text + "'");
  }
  const std::string unit = text.substr(pos);
  if (unit.empty() || unit == "ns") return timeunits::ns(value);
  if (unit == "us") return timeunits::us(value);
  if (unit == "ms") return timeunits::ms(value);
  if (unit == "s") return timeunits::sec(value);
  return make_error("unknown duration unit '" + unit + "'");
}

Expected<ParsedSystem> parse_system(std::istream& in) {
  ParsedSystem out;
  std::map<std::string, NodeId> nodes;
  std::map<std::string, GraphId> graphs;
  std::map<std::string, bool> graph_tt;
  std::map<std::string, TaskId> tasks;
  std::map<std::string, GraphId> task_graph;

  std::string line;
  int line_no = 0;
  auto error_at = [&](const std::string& message) {
    return make_error("line " + std::to_string(line_no) + ": " + message);
  };

  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;  // blank line

    std::vector<std::string> args;
    for (std::string tok; ls >> tok;) args.push_back(tok);

    if (keyword == "node") {
      if (args.empty() || args.size() > 2) {
        return error_at("node expects: <name> [cluster=<int>]");
      }
      if (nodes.contains(args[0])) return error_at("duplicate node '" + args[0] + "'");
      const NodeId id = out.app.add_node(args[0]);
      nodes[args[0]] = id;
      if (args.size() == 2) {
        std::string key;
        std::string value;
        if (!split_kv(args[1], &key, &value) || key != "cluster") {
          return error_at("node expects: <name> [cluster=<int>]");
        }
        auto cluster = parse_int(value);
        if (!cluster.ok()) return error_at(cluster.error().message);
        if (cluster.value() < 0) return error_at("cluster index must be >= 0");
        out.app.set_node_cluster(
            id, static_cast<ClusterId>(static_cast<std::uint32_t>(cluster.value())));
      }
    } else if (keyword == "gateway") {
      // gateway <name> cluster=<int> bridges=<int>[,<int>...]
      if (args.size() != 3) {
        return error_at("gateway expects: <name> cluster=<int> bridges=<int>[,<int>...]");
      }
      if (nodes.contains(args[0])) return error_at("duplicate node '" + args[0] + "'");
      const NodeId id = out.app.add_node(args[0]);
      nodes[args[0]] = id;
      int home = -1;
      std::vector<ClusterId> bridges;
      for (std::size_t i = 1; i < args.size(); ++i) {
        std::string key;
        std::string value;
        if (!split_kv(args[i], &key, &value)) return error_at("expected key=value: " + args[i]);
        if (key == "cluster") {
          auto parsed = parse_int(value);
          if (!parsed.ok()) return error_at(parsed.error().message);
          if (parsed.value() < 0) return error_at("cluster index must be >= 0");
          home = parsed.value();
        } else if (key == "bridges") {
          std::istringstream list(value);
          for (std::string item; std::getline(list, item, ',');) {
            auto bridge = parse_int(item);
            if (!bridge.ok()) return error_at(bridge.error().message);
            if (bridge.value() < 0) return error_at("bridged cluster must be >= 0");
            bridges.push_back(static_cast<ClusterId>(static_cast<std::uint32_t>(bridge.value())));
          }
        } else {
          return error_at("unknown gateway attribute '" + key + "'");
        }
      }
      if (home < 0) return error_at("gateway needs cluster=<int>");
      if (bridges.empty()) return error_at("gateway needs bridges=<int>[,<int>...]");
      out.app.set_node_cluster(id, static_cast<ClusterId>(static_cast<std::uint32_t>(home)));
      out.app.add_gateway(id, std::move(bridges));
    } else if (keyword == "backend") {
      if (args.size() != 2) return error_at("backend expects: <cluster-index> flexray|tsn");
      auto cluster = parse_int(args[0]);
      if (!cluster.ok()) return error_at(cluster.error().message);
      if (cluster.value() < 0) return error_at("cluster index must be >= 0");
      auto kind = parse_backend_kind(args[1]);
      if (!kind.ok()) return error_at(kind.error().message);
      out.app.set_cluster_backend(
          static_cast<ClusterId>(static_cast<std::uint32_t>(cluster.value())), kind.value());
    } else if (keyword == "graph") {
      if (args.size() < 2) return error_at("graph expects: <name> tt|et period=.. deadline=..");
      const std::string& name = args[0];
      if (graphs.contains(name)) return error_at("duplicate graph '" + name + "'");
      const std::string& trigger = args[1];
      if (trigger != "tt" && trigger != "et") return error_at("graph trigger must be tt or et");
      Time period = 0;
      Time deadline = kTimeNone;
      for (std::size_t i = 2; i < args.size(); ++i) {
        std::string key;
        std::string value;
        if (!split_kv(args[i], &key, &value)) return error_at("expected key=value: " + args[i]);
        auto dur = parse_duration(value);
        if (!dur.ok()) return error_at(dur.error().message);
        if (key == "period") {
          period = dur.value();
        } else if (key == "deadline") {
          deadline = dur.value();
        } else {
          return error_at("unknown graph attribute '" + key + "'");
        }
      }
      if (period <= 0) return error_at("graph needs period=<dur>");
      if (deadline == kTimeNone) deadline = period;
      graphs[name] = out.app.add_graph(name, period, deadline);
      graph_tt[name] = trigger == "tt";
    } else if (keyword == "task") {
      if (args.empty()) return error_at("task expects a name");
      const std::string& name = args[0];
      if (tasks.contains(name)) return error_at("duplicate task '" + name + "'");
      std::string graph_name;
      std::string node_name;
      Time wcet = 0;
      Time offset = 0;
      int priority = 0;
      for (std::size_t i = 1; i < args.size(); ++i) {
        std::string key;
        std::string value;
        if (!split_kv(args[i], &key, &value)) return error_at("expected key=value: " + args[i]);
        if (key == "graph") {
          graph_name = value;
        } else if (key == "node") {
          node_name = value;
        } else if (key == "wcet" || key == "offset") {
          auto dur = parse_duration(value);
          if (!dur.ok()) return error_at(dur.error().message);
          (key == "wcet" ? wcet : offset) = dur.value();
        } else if (key == "prio") {
          auto v = parse_int(value);
          if (!v.ok()) return error_at(v.error().message);
          priority = v.value();
        } else {
          return error_at("unknown task attribute '" + key + "'");
        }
      }
      if (!graphs.contains(graph_name)) return error_at("task references unknown graph");
      if (!nodes.contains(node_name)) return error_at("task references unknown node");
      const TaskId id = out.app.add_task(
          graphs[graph_name], name, nodes[node_name], wcet,
          graph_tt[graph_name] ? TaskPolicy::Scs : TaskPolicy::Fps, priority);
      if (offset > 0) out.app.set_task_release_offset(id, offset);
      tasks[name] = id;
      task_graph[name] = graphs[graph_name];
    } else if (keyword == "message") {
      if (args.empty()) return error_at("message expects a name");
      const std::string& name = args[0];
      std::string from;
      std::string to;
      int bytes = 0;
      int priority = 0;
      for (std::size_t i = 1; i < args.size(); ++i) {
        std::string key;
        std::string value;
        if (!split_kv(args[i], &key, &value)) return error_at("expected key=value: " + args[i]);
        if (key == "from") {
          from = value;
        } else if (key == "to") {
          to = value;
        } else if (key == "bytes" || key == "prio") {
          auto v = parse_int(value);
          if (!v.ok()) return error_at(v.error().message);
          (key == "bytes" ? bytes : priority) = v.value();
        } else {
          return error_at("unknown message attribute '" + key + "'");
        }
      }
      if (!tasks.contains(from) || !tasks.contains(to)) {
        return error_at("message references unknown task");
      }
      std::string sender_graph;
      for (const auto& [task_name, g] : task_graph) {
        if (task_name == from) {
          for (const auto& [graph_name, gid] : graphs) {
            if (gid == g) sender_graph = graph_name;
          }
        }
      }
      out.app.add_message(task_graph[from], name, tasks[from], tasks[to], bytes,
                          graph_tt[sender_graph] ? MessageClass::Static
                                                 : MessageClass::Dynamic,
                          priority);
    } else if (keyword == "dependency") {
      if (args.size() != 2) return error_at("dependency expects <from> <to>");
      if (!tasks.contains(args[0]) || !tasks.contains(args[1])) {
        return error_at("dependency references unknown task");
      }
      out.app.add_dependency(tasks[args[0]], tasks[args[1]]);
    } else if (keyword == "param") {
      if (args.size() != 1) return error_at("param expects key=value");
      std::string key;
      std::string value;
      if (!split_kv(args[0], &key, &value)) return error_at("expected key=value");
      if (key == "overhead_bits" || key == "bits_per_byte") {
        auto v = parse_int(value);
        if (!v.ok()) return error_at(v.error().message);
        (key == "overhead_bits" ? out.params.frame.overhead_bits
                                : out.params.frame.bits_per_payload_byte) = v.value();
      } else {
        auto dur = parse_duration(value);
        if (!dur.ok()) return error_at(dur.error().message);
        if (key == "gd_bit") {
          out.params.gd_bit = dur.value();
        } else if (key == "gd_macrotick") {
          out.params.gd_macrotick = dur.value();
        } else if (key == "gd_minislot") {
          out.params.gd_minislot = dur.value();
        } else {
          return error_at("unknown param '" + key + "'");
        }
      }
    } else {
      return error_at("unknown keyword '" + keyword + "'");
    }
  }

  auto fin = out.app.finalize();
  if (!fin.ok()) return make_error("model: " + fin.error().message);
  return out;
}

Expected<ParsedSystem> parse_system_text(const std::string& text) {
  std::istringstream in(text);
  return parse_system(in);
}

std::string write_system(const Application& app, const BusParams& params) {
  std::ostringstream os;
  os << "# flexopt system description\n";
  os << "param gd_bit=" << params.gd_bit << "ns\n";
  os << "param gd_macrotick=" << params.gd_macrotick << "ns\n";
  os << "param gd_minislot=" << params.gd_minislot << "ns\n";
  os << "param overhead_bits=" << params.frame.overhead_bits << "\n";
  os << "param bits_per_byte=" << params.frame.bits_per_payload_byte << "\n";
  for (const auto& n : app.nodes()) {
    if (n.is_gateway()) {
      os << "gateway " << n.name << " cluster=" << index_of(n.cluster) << " bridges=";
      for (std::size_t i = 0; i < n.bridges.size(); ++i) {
        os << (i > 0 ? "," : "") << index_of(n.bridges[i]);
      }
      os << "\n";
    } else {
      os << "node " << n.name;
      if (index_of(n.cluster) != 0) os << " cluster=" << index_of(n.cluster);
      os << "\n";
    }
  }
  // Backend lines appear only for non-FlexRay clusters, so pre-backend
  // system files round-trip byte-identically.
  for (std::size_t c = 0; c < app.cluster_count(); ++c) {
    const auto id = static_cast<ClusterId>(static_cast<std::uint32_t>(c));
    if (app.cluster_backend(id) != ClusterBackendKind::FlexRay) {
      os << "backend " << c << " " << to_string(app.cluster_backend(id)) << "\n";
    }
  }
  std::vector<bool> graph_is_tt(app.graph_count(), true);
  for (const auto& t : app.tasks()) {
    if (t.policy == TaskPolicy::Fps) graph_is_tt[index_of(t.graph)] = false;
  }
  for (std::uint32_t g = 0; g < app.graph_count(); ++g) {
    os << "graph " << app.graphs()[g].name << " " << (graph_is_tt[g] ? "tt" : "et")
       << " period=" << app.graphs()[g].period << "ns deadline=" << app.graphs()[g].deadline
       << "ns\n";
  }
  for (const auto& t : app.tasks()) {
    os << "task " << t.name << " graph=" << app.graph(t.graph).name
       << " node=" << app.node(t.node).name << " wcet=" << t.wcet << "ns prio=" << t.priority;
    if (t.release_offset > 0) os << " offset=" << t.release_offset << "ns";
    os << "\n";
  }
  for (const auto& m : app.messages()) {
    os << "message " << m.name << " from=" << app.task(m.sender).name
       << " to=" << app.task(m.receiver).name << " bytes=" << m.size_bytes
       << " prio=" << m.priority << "\n";
  }
  // Task->task dependencies are not retrievable one-to-one from the public
  // API (they were folded into adjacency), so re-emit the adjacency edges
  // between tasks directly.
  for (std::uint32_t t = 0; t < app.task_count(); ++t) {
    for (const ActivityRef s : app.successors(ActivityRef::task(static_cast<TaskId>(t)))) {
      if (s.is_task()) {
        os << "dependency " << app.tasks()[t].name << " " << app.task(s.as_task()).name
           << "\n";
      }
    }
  }
  return os.str();
}

}  // namespace flexopt
