#pragma once

/// \file system_format.hpp
/// Plain-text system description format and parser, so systems can be fed
/// to the CLI / examples without writing C++.
///
/// Line-based; `#` starts a comment; keywords:
///
///   node <name> [cluster=<int>]
///   gateway <name> cluster=<int> bridges=<int>[,<int>...]
///   backend <cluster-index> flexray|tsn
///   graph <name> tt|et period=<dur> deadline=<dur>
///   task <name> graph=<g> node=<n> wcet=<dur> [prio=<int>] [offset=<dur>]
///   message <name> from=<task> to=<task> bytes=<int> [prio=<int>]
///   dependency <from-task> <to-task>
///   param gd_bit|gd_macrotick|gd_minislot=<dur>
///   param overhead_bits|bits_per_byte=<int>
///
/// Task policy and message class follow the graph trigger (tt -> SCS/ST,
/// et -> FPS/DYN).  Durations accept ns/us/ms/s suffixes (default ns).

#include <iosfwd>
#include <string>

#include "flexopt/flexray/params.hpp"
#include "flexopt/model/application.hpp"
#include "flexopt/util/expected.hpp"

namespace flexopt {

struct ParsedSystem {
  Application app;  ///< finalized
  BusParams params;
};

/// Parses a duration literal like "400us", "10ms", "1s", "250" (ns).
Expected<Time> parse_duration(const std::string& text);

/// Parses a full system description; errors carry the line number.
Expected<ParsedSystem> parse_system(std::istream& in);

/// Convenience overload over a string.
Expected<ParsedSystem> parse_system_text(const std::string& text);

/// Serialises an application (plus params) back to the text format; the
/// output re-parses to an equivalent system (round-trip tested).
std::string write_system(const Application& app, const BusParams& params);

}  // namespace flexopt
