#pragma once

/// \file solve_report_json.hpp
/// Deterministic JSON serialization of a single solve — the machine
/// counterpart of `flexopt_cli solve`'s human output, written with the
/// byte-stable JsonWriter so the golden-file conformance tests can diff the
/// report schema directly.  Wall-clock fields are included only with
/// `include_timing`; everything else is deterministic for a fixed system,
/// algorithm and seed (see the portfolio determinism contract).

#include <string>
#include <string_view>

#include "flexopt/core/solve_types.hpp"
#include "flexopt/model/application.hpp"

namespace flexopt {

/// Serializes `report` for `algorithm` (the registry key the front-end
/// asked for) solved against `app`.  Schema (stable key order):
/// schema/system/algorithm/status/feasible/cost/evaluations/cache/
/// incremental/config/winner/members — `members` is empty for
/// non-portfolio solves, and per-member `improvements` carry the
/// evaluation-stamped incumbent timeline.
[[nodiscard]] std::string write_solve_json(const Application& app, std::string_view algorithm,
                                           const SolveReport& report,
                                           bool include_timing = false);

}  // namespace flexopt
