#pragma once

/// \file solve_report_json.hpp
/// Deterministic JSON serialization of a single solve — the machine
/// counterpart of `flexopt_cli solve`'s human output, written with the
/// byte-stable JsonWriter so the golden-file conformance tests can diff the
/// report schema directly.  Wall-clock fields are included only with
/// `include_timing`; everything else is deterministic for a fixed system,
/// algorithm and seed (see the portfolio determinism contract).

#include <string>
#include <string_view>

#include "flexopt/analysis/exact/exact_analysis.hpp"
#include "flexopt/core/solve_types.hpp"
#include "flexopt/model/application.hpp"

namespace flexopt {

/// Serializes `report` for `algorithm` (the registry key the front-end
/// asked for) solved against `app`.  Schema (stable key order):
/// schema/system/algorithm/status/feasible/cost/evaluations/cache/
/// incremental/profile/[pessimism]/config/winner/members — `members` is
/// empty for non-portfolio solves, and per-member `improvements` carry the
/// evaluation-stamped incumbent timeline.  `pessimism` (schema v5) appears
/// only when the caller re-analysed the winner with the exact backend and
/// passes the resulting report; infinite bounds inside it serialize as
/// JSON null, never as a sentinel integer.
[[nodiscard]] std::string write_solve_json(const Application& app, std::string_view algorithm,
                                           const SolveReport& report,
                                           bool include_timing = false,
                                           const PessimismReport* pessimism = nullptr);

}  // namespace flexopt
