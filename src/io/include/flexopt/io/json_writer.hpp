#pragma once

/// \file json_writer.hpp
/// Minimal deterministic JSON emitter for campaign summaries and other
/// machine-readable reports.  Determinism is the point: given identical
/// values the emitted bytes are identical (fixed key order is the caller's
/// job, number formatting is locale-independent %.10g via snprintf), so
/// thread-count and run-to-run comparisons can diff the output directly.

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace flexopt {

/// Streaming writer with begin/end pairs for objects and arrays.  Commas
/// and 2-space indentation are managed internally; misuse (value without a
/// key inside an object, unbalanced end) throws std::logic_error — report
/// writers are deterministic code paths, so these are programming errors.
class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key of the next member (objects only).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(bool b);
  // One overload per fundamental integer type (not the fixed-width
  // aliases): size_t/long arguments must resolve unambiguously whether
  // int64_t is long (LP64 Linux) or long long (macOS).
  JsonWriter& value(long long v);
  JsonWriter& value(unsigned long long v);
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<unsigned long long>(v)); }
  JsonWriter& value(long v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(unsigned long v) { return value(static_cast<unsigned long long>(v)); }
  /// Non-finite doubles serialize as null (JSON has no NaN/Inf).
  JsonWriter& value(double v);
  /// An explicit JSON null — for sentinel fields (absent times, undefined
  /// statistics); clearer at call sites than routing a NaN through the
  /// double overload.
  JsonWriter& null_value();

  /// key(name) + value(v) in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// The document so far; call after the outermost end_*().
  [[nodiscard]] std::string str() const;

 private:
  enum class Scope { Object, Array };
  void before_value();
  void indent();

  std::ostringstream out_;
  std::vector<Scope> scopes_;
  std::vector<int> counts_;   ///< members emitted in each open scope
  bool key_pending_ = false;  ///< a key was written, its value is due
};

/// JSON string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Locale-independent shortest-ish double rendering (%.10g, "null" for
/// non-finite values) shared by JsonWriter and the CSV report writer.
[[nodiscard]] std::string json_double(double v);

}  // namespace flexopt
