#include "flexopt/io/solve_report_json.hpp"

#include "flexopt/io/json_writer.hpp"

namespace flexopt {
namespace {

void write_config(JsonWriter& json, const BusConfig& config) {
  json.begin_object()
      .field("static_slot_count", config.static_slot_count)
      .field("static_slot_len", config.static_slot_len)
      .field("minislot_count", config.minislot_count);
  json.key("static_slot_owner").begin_array();
  for (const NodeId owner : config.static_slot_owner) {
    json.value(static_cast<long long>(owner));
  }
  json.end_array();
  json.key("frame_id").begin_array();
  for (const int id : config.frame_id) json.value(id);
  json.end_array();
  json.end_object();
}

void write_member(JsonWriter& json, const MemberSolveReport& member, bool include_timing) {
  json.begin_object()
      .field("member", member.member)
      .field("algorithm", member.algorithm)
      .field("seed", member.seed)
      .field("budget", member.budget)
      .field("winner", member.winner)
      .field("status", to_string(member.status))
      .field("feasible", member.feasible)
      .field("cost", member.cost)
      .field("evaluations", member.evaluations)
      .field("cache_hits", member.cache_hits)
      .field("cache_misses", member.cache_misses)
      .field("delta_evaluations", member.delta_evaluations)
      .field("components_recomputed", member.components_recomputed)
      .field("components_reused", member.components_reused);
  if (include_timing) json.field("wall_seconds", member.wall_seconds);
  json.key("improvements").begin_array();
  for (const IncumbentEvent& event : member.improvements) {
    json.begin_object()
        .field("evaluations", event.evaluations)
        .field("cost", event.cost)
        .field("feasible", event.feasible)
        .end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace

std::string write_solve_json(const Application& app, std::string_view algorithm,
                             const SolveReport& report, bool include_timing) {
  const OptimizationOutcome& outcome = report.outcome;
  // Schema v2 delta: the version bump itself, plus — for multi-cluster
  // systems only — a `clusters` count in the system object and a
  // `cluster_configs` array after `config`.  Single-cluster reports are
  // byte-identical to v1 apart from the version field, which is what keeps
  // the checked-in goldens honest across the refactor.
  const bool multicluster = outcome.system.cluster_count() > 1;
  JsonWriter json;
  json.begin_object();
  json.field("schema", "flexopt-solve-report/2");
  json.key("system").begin_object();
  json.field("tasks", app.task_count())
      .field("messages", app.message_count())
      .field("graphs", app.graph_count())
      .field("nodes", app.node_count());
  if (multicluster) json.field("clusters", outcome.system.cluster_count());
  json.end_object();
  json.field("algorithm", algorithm);
  json.field("algorithm_label", outcome.algorithm);
  json.field("status", to_string(report.status));
  json.field("feasible", outcome.feasible);
  json.field("cost", outcome.cost.value);
  json.field("schedulable", outcome.cost.schedulable);
  json.field("unbounded_activities", outcome.cost.unbounded_activities);
  json.field("evaluations", outcome.evaluations);
  if (include_timing) json.field("wall_seconds", outcome.wall_seconds);
  json.key("cache")
      .begin_object()
      .field("hits", report.cache_hits)
      .field("misses", report.cache_misses)
      .end_object();
  json.key("incremental")
      .begin_object()
      .field("delta_evaluations", report.delta_evaluations)
      .field("components_recomputed", report.components_recomputed)
      .field("components_reused", report.components_reused)
      .end_object();
  json.key("config");
  write_config(json, outcome.config);
  if (multicluster) {
    // One config per cluster; frame_id vectors index the *local* MessageIds
    // of that cluster's projection (relay hops included).
    json.key("cluster_configs").begin_array();
    for (const BusConfig& cluster : outcome.system.clusters) write_config(json, cluster);
    json.end_array();
  }
  json.field("winner", report.winner);
  json.key("members").begin_array();
  for (const MemberSolveReport& member : report.members) {
    write_member(json, member, include_timing);
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace flexopt
