#include "flexopt/io/solve_report_json.hpp"

#include "flexopt/analysis/sat_time.hpp"
#include "flexopt/io/json_writer.hpp"

namespace flexopt {
namespace {

void write_config(JsonWriter& json, const BusConfig& config, const char* backend = nullptr) {
  json.begin_object();
  if (backend != nullptr) json.field("backend", backend);
  json.field("static_slot_count", config.static_slot_count)
      .field("static_slot_len", config.static_slot_len)
      .field("minislot_count", config.minislot_count);
  json.key("static_slot_owner").begin_array();
  for (const NodeId owner : config.static_slot_owner) {
    json.value(static_cast<long long>(owner));
  }
  json.end_array();
  json.key("frame_id").begin_array();
  for (const int id : config.frame_id) json.value(id);
  json.end_array();
  json.end_object();
}

/// Schema v4: cluster_configs entries are backend-tagged.  FlexRay entries
/// keep the v3 field set (the tag is prepended); TSN entries carry the
/// time-aware-shaper decision variables instead.
void write_cluster_config(JsonWriter& json, const ClusterConfig& cluster) {
  if (cluster.kind == ClusterBackendKind::Tsn) {
    const TsnConfig& tsn = cluster.tsn;
    json.begin_object()
        .field("backend", to_string(ClusterBackendKind::Tsn))
        .field("cycle", tsn.cycle)
        .field("link_rate_mbps", tsn.link_rate_mbps);
    json.key("gates").begin_array();
    for (const TsnGateWindow& gate : tsn.gates) {
      json.begin_object()
          .field("offset", gate.offset)
          .field("length", gate.length)
          .end_object();
    }
    json.end_array();
    json.key("et_priority").begin_array();
    for (const int priority : tsn.et_priority) json.value(priority);
    json.end_array();
    json.end_object();
    return;
  }
  write_config(json, cluster.flexray, to_string(ClusterBackendKind::FlexRay));
}

/// Bound fields inside the pessimism block: infinite bounds (a starved TSN
/// port, an uncovered ET message) serialize as JSON null — int64 max is not
/// a number any consumer should ever parse back as a response time.
void write_bound(JsonWriter& json, std::string_view name, Time bound) {
  json.key(name);
  if (is_infinite(bound)) {
    json.null_value();
  } else {
    json.value(static_cast<long long>(bound));
  }
}

/// Schema v5: the `pessimism` block of an exact-mode solve — holistic vs
/// schedule-space bounds of the winner, per ET activity.
void write_pessimism(JsonWriter& json, const PessimismReport& pessimism) {
  json.key("pessimism").begin_object();
  json.field("activities", pessimism.activities)
      .field("refined", pessimism.refined)
      .field("unbounded", pessimism.unbounded)
      .field("mean_gap", pessimism.mean_gap)
      .field("max_gap", pessimism.max_gap)
      .field("explored_states", pessimism.explored_states)
      .field("merged_states", pessimism.merged_states)
      .field("any_fallback", pessimism.any_fallback);
  json.key("cluster_fallbacks").begin_array();
  for (const ExactFallback fallback : pessimism.cluster_fallbacks) {
    json.value(to_string(fallback));
  }
  json.end_array();
  json.key("entries").begin_array();
  for (const PessimismActivity& entry : pessimism.entries) {
    json.begin_object()
        .field("cluster", entry.cluster)
        .field("activity", entry.is_task ? "task" : "message")
        .field("index", entry.index);
    write_bound(json, "holistic", entry.holistic);
    write_bound(json, "exact", entry.exact);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void write_member(JsonWriter& json, const MemberSolveReport& member, bool include_timing) {
  json.begin_object()
      .field("member", member.member)
      .field("algorithm", member.algorithm)
      .field("seed", member.seed)
      .field("budget", member.budget)
      .field("winner", member.winner)
      .field("status", to_string(member.status))
      .field("feasible", member.feasible)
      .field("cost", member.cost)
      .field("evaluations", member.evaluations)
      .field("cache_hits", member.cache_hits)
      .field("cache_misses", member.cache_misses)
      .field("delta_evaluations", member.delta_evaluations)
      .field("components_recomputed", member.components_recomputed)
      .field("components_reused", member.components_reused);
  if (include_timing) json.field("wall_seconds", member.wall_seconds);
  json.key("improvements").begin_array();
  for (const IncumbentEvent& event : member.improvements) {
    json.begin_object()
        .field("evaluations", event.evaluations)
        .field("cost", event.cost)
        .field("feasible", event.feasible)
        .end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace

std::string write_solve_json(const Application& app, std::string_view algorithm,
                             const SolveReport& report, bool include_timing,
                             const PessimismReport* pessimism) {
  const OptimizationOutcome& outcome = report.outcome;
  // Schema v2 delta: the version bump itself, plus — for multi-cluster
  // systems only — a `clusters` count in the system object and a
  // `cluster_configs` array after `config`.  Schema v3 delta: the `profile`
  // block after `incremental` (always-on work/iteration counters and the
  // components-per-delta histogram; integer-only, so reports stay
  // byte-deterministic for a fixed seed).  Schema v4 delta: every
  // cluster_configs entry leads with a `backend` tag ("flexray" | "tsn")
  // and TSN entries carry the shaper decision variables (cycle,
  // link_rate_mbps, gates, et_priority) instead of the FlexRay fields.
  // Schema v5 delta: version-only for holistic solves; exact-mode solves
  // add a `pessimism` block after `profile` (infinite bounds are null).
  // Additive within v5: the profile block carries the exact-engine counters
  // (exact_states_explored, exact_states_deduped, exact_frontier_reused) —
  // zero on holistic solves, so existing consumers see only new keys.
  const bool multicluster = outcome.system.cluster_count() > 1;
  JsonWriter json;
  json.begin_object();
  json.field("schema", "flexopt-solve-report/5");
  json.key("system").begin_object();
  json.field("tasks", app.task_count())
      .field("messages", app.message_count())
      .field("graphs", app.graph_count())
      .field("nodes", app.node_count());
  if (multicluster) json.field("clusters", outcome.system.cluster_count());
  json.end_object();
  json.field("algorithm", algorithm);
  json.field("algorithm_label", outcome.algorithm);
  json.field("status", to_string(report.status));
  json.field("feasible", outcome.feasible);
  json.field("cost", outcome.cost.value);
  json.field("schedulable", outcome.cost.schedulable);
  json.field("unbounded_activities", outcome.cost.unbounded_activities);
  json.field("evaluations", outcome.evaluations);
  if (include_timing) json.field("wall_seconds", outcome.wall_seconds);
  json.key("cache")
      .begin_object()
      .field("hits", report.cache_hits)
      .field("misses", report.cache_misses)
      .end_object();
  json.key("incremental")
      .begin_object()
      .field("delta_evaluations", report.delta_evaluations)
      .field("components_recomputed", report.components_recomputed)
      .field("components_reused", report.components_reused)
      .end_object();
  // Always-on profiling counters (schema v3 addition).  Integer-only so the
  // block stays byte-deterministic for a fixed seed.
  const EvaluatorWorkStats& profile = report.profile;
  json.key("profile")
      .begin_object()
      .field("holistic_iterations", profile.analysis.holistic_iterations)
      .field("fixed_point_iterations", profile.analysis.fixed_point_iterations)
      .field("fps_analyses", profile.analysis.fps_analyses)
      .field("fps_skipped", profile.analysis.fps_skipped)
      .field("dyn_analyses", profile.analysis.dyn_analyses)
      .field("dyn_skipped", profile.analysis.dyn_skipped)
      .field("schedule_builds", profile.analysis.schedule_builds)
      .field("schedule_reuses", profile.analysis.schedule_reuses)
      .field("exact_states_explored", profile.analysis.exact_states_explored)
      .field("exact_states_deduped", profile.analysis.exact_states_deduped)
      .field("exact_frontier_reused", profile.analysis.exact_frontier_reused)
      .field("full_evaluations", profile.full_evaluations)
      .field("delta_seeded", profile.delta_seeded)
      .field("arena_binds", profile.arena_binds)
      .field("arena_reuses", profile.arena_reuses);
  const Histogram& per_delta = profile.components_per_delta;
  json.key("components_per_delta")
      .begin_object()
      .field("count", per_delta.count())
      .field("sum", per_delta.sum());
  json.key("buckets").begin_array();
  const int top_bucket = per_delta.max_bucket();
  for (int b = 0; b <= top_bucket; ++b) {
    const std::uint64_t bucket_count = per_delta.buckets()[static_cast<std::size_t>(b)];
    if (bucket_count == 0) continue;
    json.begin_object()
        .field("le", Histogram::bucket_bound(b))
        .field("count", bucket_count)
        .end_object();
  }
  json.end_array();
  json.end_object();   // components_per_delta
  json.end_object();   // profile
  if (pessimism != nullptr) write_pessimism(json, *pessimism);
  json.key("config");
  write_config(json, outcome.config);
  if (multicluster) {
    // One config per cluster; frame_id vectors index the *local* MessageIds
    // of that cluster's projection (relay hops included).
    json.key("cluster_configs").begin_array();
    for (const ClusterConfig& cluster : outcome.system.clusters) {
      write_cluster_config(json, cluster);
    }
    json.end_array();
  }
  json.field("winner", report.winner);
  json.key("members").begin_array();
  for (const MemberSolveReport& member : report.members) {
    write_member(json, member, include_timing);
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace flexopt
