#include "flexopt/analysis/multicluster.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "flexopt/analysis/exact/exact_analysis.hpp"

namespace flexopt {
namespace {

Expected<AnalysisResult> analyze_one(const ClusterLayout& layout, const AnalysisOptions& options,
                                     AnalysisComponentCache* cache,
                                     AnalysisWorkCounters* counters,
                                     std::span<const Time> external_task_jitter,
                                     std::span<const Time> dyn_message_caps) {
  if (layout.kind() == ClusterBackendKind::Tsn) {
    // The TSN backend has no incremental path yet; its schedule build is a
    // plain topological sweep, cheap enough to recompute per evaluation.
    // Response caps never target TSN clusters (the exact backend records
    // ExactFallback::UnsupportedBackend instead of producing any).
    return analyze_tsn_cluster(layout.tsn(), options, counters, external_task_jitter);
  }
  if (cache != nullptr && dyn_message_caps.empty()) {
    return analyze_system_incremental(layout.flexray(), options, *cache, counters, nullptr,
                                      nullptr, external_task_jitter);
  }
  return analyze_system(layout.flexray(), options, counters, external_task_jitter,
                        dyn_message_caps);
}

}  // namespace

Expected<std::vector<ClusterLayout>> build_system_layouts(const SystemModel& model,
                                                          const BusParams& params,
                                                          const SystemConfig& config) {
  if (config.cluster_count() != model.cluster_count()) {
    return make_error("system config has " + std::to_string(config.cluster_count()) +
                      " cluster configs, the system model has " +
                      std::to_string(model.cluster_count()) + " clusters");
  }
  std::vector<ClusterLayout> layouts;
  layouts.reserve(model.cluster_count());
  for (std::size_t c = 0; c < model.cluster_count(); ++c) {
    const Application& app = *model.cluster_app(c);
    const ClusterBackendKind declared = app.cluster_backend(ClusterId{0});
    if (config.clusters[c].kind != declared) {
      return make_error("cluster " + std::to_string(c) + ": config backend '" +
                        to_string(config.clusters[c].kind) +
                        "' does not match the cluster's declared backend '" +
                        to_string(declared) + "'");
    }
    auto layout = ClusterLayout::build(app, params, config.clusters[c]);
    if (!layout.ok()) {
      return make_error("cluster " + std::to_string(c) + ": " + layout.error().message);
    }
    layouts.push_back(std::move(layout).value());
  }
  return layouts;
}

Expected<MulticlusterResult> analyze_multicluster(
    const SystemModel& model, std::span<const ClusterLayout> layouts,
    const AnalysisOptions& options, const MulticlusterOptions& mc_options,
    std::span<AnalysisComponentCache* const> caches, AnalysisWorkCounters* counters,
    std::span<const std::vector<Time>> dyn_message_caps) {
  // Exact mode dispatches to the schedule-space backend, which re-enters
  // this function with mode == Holistic (and, on the second pass, with the
  // explored caps) — the caps.empty() guard keeps the re-entry direct.
  if (options.mode == AnalysisMode::Exact && dyn_message_caps.empty()) {
    return analyze_multicluster_exact(model, layouts, options, mc_options, caches, counters);
  }
  const std::size_t C = model.cluster_count();
  if (layouts.size() != C) {
    return make_error("analyze_multicluster: layout count does not match cluster count");
  }
  auto cache_of = [&](std::size_t c) -> AnalysisComponentCache* {
    return c < caches.size() ? caches[c] : nullptr;
  };
  auto caps_of = [&](std::size_t c) -> std::span<const Time> {
    return c < dyn_message_caps.size() ? std::span<const Time>(dyn_message_caps[c])
                                       : std::span<const Time>{};
  };

  MulticlusterResult result;
  result.clusters.resize(C);

  if (model.single_cluster()) {
    auto analysis = analyze_one(layouts[0], options, cache_of(0), counters, {}, caps_of(0));
    if (!analysis.ok()) return analysis.error();
    result.clusters[0] = std::move(analysis).value();
    result.cost = result.clusters[0].cost;
    result.converged = result.clusters[0].converged;
    result.cross_iterations = 1;
    return result;
  }

  // Injected release-jitter floors, indexed [cluster][local TaskId]; only
  // forwarding relays ever get a non-zero entry.
  std::vector<std::vector<Time>> external(C);
  for (std::size_t c = 0; c < C; ++c) {
    external[c].assign(model.cluster_app(c)->task_count(), 0);
  }

  bool stable = false;
  // At least one sweep always runs: a non-positive cap would leave the
  // per-cluster results empty and the pinning below out of bounds.
  const int max_cross = std::max(1, mc_options.max_cross_iterations);
  for (int iter = 0; iter < max_cross && !stable; ++iter) {
    ++result.cross_iterations;
    for (std::size_t c = 0; c < C; ++c) {
      auto analysis = analyze_one(layouts[c], options, cache_of(c), counters, external[c],
                                  caps_of(c));
      if (!analysis.ok()) {
        return make_error("cluster " + std::to_string(c) + ": " + analysis.error().message);
      }
      result.clusters[c] = std::move(analysis).value();
    }
    // Jacobi update of the coupling jitters: all clusters are analysed
    // against the previous sweep's bounds, so cluster order cannot matter.
    stable = true;
    for (const RelayLink& link : model.relay_links()) {
      const Time upstream =
          result.clusters[link.upstream_cluster].task_completion[index_of(link.upstream_recv)];
      Time& slot = external[link.downstream_cluster][index_of(link.downstream_send)];
      if (slot != upstream) {
        slot = upstream;
        stable = false;
      }
    }
  }

  result.converged = stable;
  for (const AnalysisResult& cluster : result.clusters) {
    result.converged = result.converged && cluster.converged;
  }
  if (!result.converged) {
    // Same policy as analyze_system's iteration cap: a non-stabilised bound
    // is not a safe upper bound, so pin every ET activity system-wide.
    for (std::size_t c = 0; c < C; ++c) {
      const Application& app = *model.cluster_app(c);
      AnalysisResult& cluster = result.clusters[c];
      for (std::uint32_t t = 0; t < app.task_count(); ++t) {
        if (app.tasks()[t].policy == TaskPolicy::Fps) {
          cluster.task_completion[t] = kTimeInfinity;
        }
      }
      for (std::uint32_t m = 0; m < app.message_count(); ++m) {
        if (app.messages()[m].cls == MessageClass::Dynamic) {
          cluster.message_completion[m] = kTimeInfinity;
        }
      }
      cluster.cost = evaluate_cost(app, cluster.task_completion, cluster.message_completion);
    }
  }

  CostAccumulator acc;
  for (std::size_t c = 0; c < C; ++c) {
    acc.add(*model.cluster_app(c), result.clusters[c].task_completion,
            result.clusters[c].message_completion);
  }
  result.cost = acc.finish();
  return result;
}

}  // namespace flexopt
