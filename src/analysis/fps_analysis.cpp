#include "flexopt/analysis/fps_analysis.hpp"

#include <algorithm>

#include "flexopt/analysis/sat_time.hpp"
#include "flexopt/math/fixed_point.hpp"

namespace flexopt {

Time fps_response_time(const FpsTaskParams& task, std::span<const FpsTaskParams> same_node,
                       const BusyProfile& scs, Time horizon, int* fp_iterations, Time seed) {
  if (is_infinite(task.jitter)) return kTimeInfinity;
  // Level-i load including the SCS share: if it exceeds 1, the level-i busy
  // period never ends and the least fixed point below (which only bounds
  // the *first* job) is not a sound WCRT — report unbounded instead.
  double load = static_cast<double>(task.wcet) / static_cast<double>(task.period) +
                static_cast<double>(scs.busy_per_period()) / static_cast<double>(scs.period());
  for (const FpsTaskParams& j : same_node) {
    if (j.id == task.id || j.priority > task.priority) continue;
    if (is_infinite(j.jitter)) {
      // An interfering task with unbounded jitter makes the bound unbounded.
      return kTimeInfinity;
    }
    load += static_cast<double>(j.wcet) / static_cast<double>(j.period);
  }
  if (load > 1.0 + 1e-12) return kTimeInfinity;

  const auto body = [&](Time w) -> Time {
    Time total = task.wcet;
    total = sat_add(total, scs.max_busy_in_window(w));
    for (const FpsTaskParams& j : same_node) {
      if (j.id == task.id || j.priority > task.priority) continue;
      const std::int64_t releases = ceil_div(w + j.jitter, j.period);
      total = sat_add(total, sat_mul(j.wcet, releases));
    }
    return total;
  };

  const FixedPointResult fp = iterate_to_fixed_point(body, horizon, 10'000, seed);
  if (fp_iterations != nullptr) *fp_iterations += fp.iterations;
  if (!fp.converged) return kTimeInfinity;
  return sat_add(task.jitter, fp.value);
}

Time fps_response_time_sum(std::span<const FpsTaskParams> same_node, const BusyProfile& scs,
                           Time horizon, std::span<const Time> seeds) {
  Time sum = 0;
  for (std::size_t i = 0; i < same_node.size(); ++i) {
    Time r;
    if (!seeds.empty() && is_infinite(seeds[i])) {
      // The seed diverged against a *subset* of this profile's
      // interference, so this task's recurrence diverges here too.
      r = kTimeInfinity;
    } else {
      r = fps_response_time(same_node[i], same_node, scs, horizon, nullptr,
                            seeds.empty() ? 0 : seeds[i]);
    }
    sum = sat_add(sum, is_infinite(r) ? horizon : r);
  }
  return sum;
}

}  // namespace flexopt
