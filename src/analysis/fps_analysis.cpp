#include "flexopt/analysis/fps_analysis.hpp"

#include <algorithm>

#include "flexopt/analysis/sat_time.hpp"
#include "flexopt/math/fixed_point.hpp"

namespace flexopt {

Time fps_response_time(const FpsTaskParams& task, std::span<const FpsTaskParams> same_node,
                       const BusyProfile& scs, Time horizon) {
  if (is_infinite(task.jitter)) return kTimeInfinity;
  // Level-i load including the SCS share: if it exceeds 1, the level-i busy
  // period never ends and the least fixed point below (which only bounds
  // the *first* job) is not a sound WCRT — report unbounded instead.
  double load = static_cast<double>(task.wcet) / static_cast<double>(task.period) +
                static_cast<double>(scs.busy_per_period()) / static_cast<double>(scs.period());
  for (const FpsTaskParams& j : same_node) {
    if (j.id == task.id || j.priority > task.priority) continue;
    if (is_infinite(j.jitter)) {
      // An interfering task with unbounded jitter makes the bound unbounded.
      return kTimeInfinity;
    }
    load += static_cast<double>(j.wcet) / static_cast<double>(j.period);
  }
  if (load > 1.0 + 1e-12) return kTimeInfinity;

  const auto body = [&](Time w) -> Time {
    Time total = task.wcet;
    total = sat_add(total, scs.max_busy_in_window(w));
    for (const FpsTaskParams& j : same_node) {
      if (j.id == task.id || j.priority > task.priority) continue;
      const std::int64_t releases = ceil_div(w + j.jitter, j.period);
      total = sat_add(total, sat_mul(j.wcet, releases));
    }
    return total;
  };

  const FixedPointResult fp = iterate_to_fixed_point(body, horizon);
  if (!fp.converged) return kTimeInfinity;
  return sat_add(task.jitter, fp.value);
}

Time fps_response_time_sum(std::span<const FpsTaskParams> same_node, const BusyProfile& scs,
                           Time horizon) {
  Time sum = 0;
  for (const FpsTaskParams& t : same_node) {
    const Time r = fps_response_time(t, same_node, scs, horizon);
    sum = sat_add(sum, is_infinite(r) ? horizon : r);
  }
  return sum;
}

}  // namespace flexopt
