#include "flexopt/analysis/tsn_analysis.hpp"

#include <algorithm>
#include <string>

#include "flexopt/analysis/fps_analysis.hpp"
#include "flexopt/analysis/sat_time.hpp"
#include "flexopt/util/log.hpp"

namespace flexopt {

Expected<bool> TsnLayout::assign(const Application& app, const TsnConfig& config) {
  if (!app.finalized()) return make_error("TsnLayout requires a finalized application");
  if (config.cycle <= 0) return make_error("tsn config: gating cycle must be positive");
  if (config.link_rate_mbps <= 0) return make_error("tsn config: link rate must be positive");
  const std::size_t M = app.message_count();
  if (config.gates.size() != M || config.et_priority.size() != M) {
    return make_error("tsn config: gate and priority tables must have one entry per message (" +
                      std::to_string(M) + " message(s), " + std::to_string(config.gates.size()) +
                      " gate(s), " + std::to_string(config.et_priority.size()) + " priorities)");
  }
  // The gate pattern must repeat within the hyper-period so that replaying
  // the schedule table per hyper-period (simulator) keeps every ST frame
  // inside a gate occurrence.
  const auto hp = app.hyperperiod();
  if (!hp.ok()) return hp.error();
  if (hp.value() % config.cycle != 0) {
    return make_error("tsn config: gating cycle " + format_time(config.cycle) +
                      " must divide the hyper-period " + format_time(hp.value()));
  }

  app_ = &app;
  config_ = config;
  durations_.resize(M);
  egress_port_.resize(M);
  st_ordinal_.resize(M);
  const std::size_t N = app.node_count();
  port_windows_.resize(N);
  for (auto& w : port_windows_) w.clear();
  port_closed_.assign(N, 0);
  port_max_et_.assign(N, 0);

  int st_count = 0;
  for (std::uint32_t m = 0; m < M; ++m) {
    const Message& msg = app.messages()[m];
    durations_[m] = tsn_frame_duration(msg.size_bytes, config.link_rate_mbps);
    const std::size_t port = index_of(app.task(msg.receiver).node);
    egress_port_[m] = port;
    const TsnGateWindow& gate = config.gates[m];
    if (msg.cls == MessageClass::Static) {
      st_ordinal_[m] = st_count++;
      if (gate.offset < 0 || gate.length < durations_[m]) {
        return make_error("tsn config: ST message '" + msg.name + "' needs a gate window of at "
                          "least its frame duration " + format_time(durations_[m]));
      }
      if (gate.offset + gate.length > config_.cycle) {
        return make_error("tsn config: gate window of ST message '" + msg.name +
                          "' exceeds the gating cycle");
      }
      port_windows_[port].push_back(Interval{gate.offset, gate.offset + gate.length});
      port_closed_[port] += gate.length;
    } else {
      st_ordinal_[m] = -1;
      if (gate.offset != 0 || gate.length != 0) {
        return make_error("tsn config: ET message '" + msg.name +
                          "' must have the zero gate window");
      }
      port_max_et_[port] = std::max(port_max_et_[port], durations_[m]);
    }
  }

  for (std::size_t n = 0; n < N; ++n) {
    auto& windows = port_windows_[n];
    std::sort(windows.begin(), windows.end(),
              [](const Interval& a, const Interval& b) { return a.start < b.start; });
    for (std::size_t i = 0; i + 1 < windows.size(); ++i) {
      if (windows[i].end > windows[i + 1].start) {
        return make_error("tsn config: gate windows overlap on the egress port of node '" +
                          app.nodes()[n].name + "'");
      }
    }
  }
  return true;
}

Expected<TsnLayout> TsnLayout::build(const Application& app, TsnConfig config) {
  TsnLayout layout;
  auto assigned = layout.assign(app, config);
  if (!assigned.ok()) return assigned.error();
  return layout;
}

Expected<StaticSchedule> build_tsn_schedule(const TsnLayout& layout,
                                            const SchedulerOptions& options) {
  const Application& app = layout.application();
  const auto hp = app.hyperperiod();
  if (!hp.ok()) return hp.error();
  const Time H = hp.value();
  const Time cycle = layout.cycle_len();

  StaticSchedule schedule(H, app.node_count(), app.task_count(), app.message_count());
  // Per-node busy intervals of already-placed SCS instances, sorted by start
  // (gate windows reserve the egress link, not the CPU, so tasks ignore
  // them).
  std::vector<std::vector<Interval>> busy(app.node_count());
  std::vector<std::vector<Time>> task_finish(app.task_count());
  std::vector<std::vector<Time>> msg_finish(app.message_count());

  // TT predecessors of TT activities are themselves TT (finalize() enforces
  // it) and precedence never crosses graphs, so instance k of an activity
  // depends exactly on instance k of each predecessor, already placed by the
  // topological sweep.
  auto finish_of = [&](ActivityRef p, std::size_t k) {
    return p.is_task() ? task_finish[p.index][k] : msg_finish[p.index][k];
  };

  for (const ActivityRef a : app.topological_order()) {
    const Time period = app.period_of(a);
    const std::size_t instances = static_cast<std::size_t>(H / period);
    if (a.is_task()) {
      const Task& task = app.task(a.as_task());
      if (task.policy != TaskPolicy::Scs) continue;
      auto& fin = task_finish[a.index];
      fin.resize(instances);
      auto& node_busy = busy[index_of(task.node)];
      for (std::size_t k = 0; k < instances; ++k) {
        const Time release = static_cast<Time>(k) * period;
        Time ready = release + task.release_offset;
        for (const ActivityRef p : app.predecessors(a)) {
          ready = std::max(ready, finish_of(p, k));
        }
        // ASAP placement into the earliest idle gap of the node.
        Time start = ready;
        for (const Interval& iv : node_busy) {
          if (iv.end <= start) continue;
          if (iv.start >= start + task.wcet) break;
          start = iv.end;
        }
        const Interval placed{start, start + task.wcet};
        node_busy.insert(std::upper_bound(node_busy.begin(), node_busy.end(), placed,
                                          [](const Interval& x, const Interval& y) {
                                            return x.start < y.start;
                                          }),
                         placed);
        fin[k] = placed.end;
        schedule.add_task_entry(
            ScheduledTask{a.as_task(), static_cast<int>(k), release, placed.start, placed.end},
            index_of(task.node));
      }
    } else {
      const Message& msg = app.message(a.as_message());
      if (msg.cls != MessageClass::Static) continue;
      const TsnGateWindow& gate = layout.config().gates[a.index];
      const Time duration = layout.duration(a.as_message());
      auto& fin = msg_finish[a.index];
      fin.resize(instances);
      std::int64_t last_occ = -1;
      for (std::size_t k = 0; k < instances; ++k) {
        const Time release = static_cast<Time>(k) * period;
        Time ready = release;
        for (const ActivityRef p : app.predecessors(a)) {
          ready = std::max(ready, finish_of(p, k));
        }
        // First gate occurrence at or after readiness; consecutive
        // instances take distinct occurrences.
        std::int64_t occ =
            ready <= gate.offset ? 0 : (ready - gate.offset + cycle - 1) / cycle;
        occ = std::max(occ, last_occ + 1);
        const Time start = gate.offset + occ * cycle;
        if (start - ready > static_cast<Time>(options.max_slot_search_cycles) * cycle) {
          return make_error("tsn schedule: no gate occurrence for ST message '" + msg.name +
                            "' within " + std::to_string(options.max_slot_search_cycles) +
                            " gating cycles of its readiness");
        }
        last_occ = occ;
        fin[k] = start + duration;
        schedule.add_message_entry(ScheduledMessage{a.as_message(), static_cast<int>(k), release,
                                                    occ, layout.st_ordinal(a.as_message()), start,
                                                    fin[k]});
      }
    }
  }
  schedule.finalize();
  return schedule;
}

namespace {

/// Interference geometry of one ET message on its egress port, fixed across
/// holistic iterations.
struct EtInterference {
  std::vector<std::uint32_t> higher;  ///< same-port ET messages with prio <= own (mutual at ties)
  Time blocking = 0;                  ///< longest lower-priority same-port ET frame
};

/// Jitter-aware non-preemptive strict-priority response-time bound on one
/// egress port (the CAN-style busy-window recurrence), inflated per
/// gate-closure occurrence by the closure length plus one guard-band idle.
/// Monotone in every jitter; kTimeInfinity past the horizon or when the
/// bound exceeds the message period (more than one pending own instance).
Time tsn_et_response_time(const TsnLayout& layout, MessageId m, const EtInterference& et,
                          const std::vector<Time>& message_jitter, Time horizon,
                          int* fp_iterations) {
  const Application& app = layout.application();
  const Time J = message_jitter[index_of(m)];
  if (is_infinite(J)) return kTimeInfinity;
  const Time C = layout.duration(m);
  const Time T = app.period_of(ActivityRef::message(m));
  const Time cycle = layout.cycle_len();
  const std::size_t port = layout.egress_port(m);
  // Per closure-coverage unit: the windows' closed time plus one guard-band
  // idle per window (a queued frame never starts unless it completes before
  // the next gate opening, so each closure wastes at most one longest-ET
  // head-of-line frame of idle time).
  const Time inflate =
      layout.port_closed_per_cycle(port) +
      static_cast<Time>(layout.port_windows(port).size()) * layout.port_max_et_frame(port);

  Time w = 0;
  for (;;) {
    if (fp_iterations != nullptr) ++*fp_iterations;
    Time next = et.blocking;
    if (inflate > 0) {
      // A window of length w overlaps at most ceil(w / cycle) + 1 <=
      // w / cycle + 2 occurrences of each gate window.
      next = sat_add(next, sat_mul(inflate, w / cycle + 2));
    }
    for (const std::uint32_t j : et.higher) {
      const Time Jj = message_jitter[j];
      if (is_infinite(Jj)) return kTimeInfinity;
      const Time Tj = app.period_of(ActivityRef::message(static_cast<MessageId>(j)));
      const std::int64_t n = (w + Jj) / Tj + 1;
      next = sat_add(next, sat_mul(layout.duration(static_cast<MessageId>(j)), n));
    }
    if (next > horizon || is_infinite(next)) return kTimeInfinity;
    if (next == w) break;
    w = next;
  }
  const Time response = sat_add(J, sat_add(w, C));
  // The busy-window argument covers one pending instance per message; a
  // response beyond the period invalidates that, so report unbounded.
  if (response > T) return kTimeInfinity;
  return response;
}

}  // namespace

Expected<AnalysisResult> analyze_tsn_cluster(const TsnLayout& layout,
                                             const AnalysisOptions& options,
                                             AnalysisWorkCounters* counters,
                                             std::span<const Time> external_task_jitter) {
  const Application& app = layout.application();
  const auto horizon_result = analysis_horizon(app, options);
  if (!horizon_result.ok()) return horizon_result.error();
  const Time horizon = horizon_result.value();

  if (counters != nullptr) ++counters->schedule_builds;
  auto schedule_result = build_tsn_schedule(layout, options.scheduler);
  if (!schedule_result.ok()) return schedule_result.error();

  // The holistic iteration below mirrors analyze_system (system_analysis.cpp)
  // step for step — same seeding, same jitter propagation, same divergence
  // pinning — with the DYN-segment step replaced by the per-egress-port
  // strict-priority bound.  Keeping the structure identical is what makes
  // the cross-cluster Jacobi iteration backend-agnostic.
  AnalysisResult result;
  result.schedule_ptr = std::make_shared<const StaticSchedule>(std::move(schedule_result).value());
  const StaticSchedule& schedule = *result.schedule_ptr;
  result.task_completion.assign(app.task_count(), 0);
  result.message_completion.assign(app.message_count(), 0);
  result.task_jitter.assign(app.task_count(), 0);
  result.message_jitter.assign(app.message_count(), 0);

  for (std::uint32_t t = 0; t < app.task_count(); ++t) {
    if (app.tasks()[t].policy == TaskPolicy::Scs) {
      result.task_completion[t] = schedule.task_wcrt(static_cast<TaskId>(t));
    }
  }
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (app.messages()[m].cls == MessageClass::Static) {
      result.message_completion[m] = schedule.message_wcrt(static_cast<MessageId>(m));
    }
  }

  auto completion_of = [&](ActivityRef a) {
    return a.is_task() ? result.task_completion[a.index] : result.message_completion[a.index];
  };

  std::vector<std::vector<FpsTaskParams>> fps_on_node(app.node_count());
  for (std::uint32_t t = 0; t < app.task_count(); ++t) {
    const Task& task = app.tasks()[t];
    if (task.policy != TaskPolicy::Fps) continue;
    fps_on_node[index_of(task.node)].push_back(FpsTaskParams{
        static_cast<TaskId>(t), task.wcet, app.graph(task.graph).period, 0, task.priority});
  }

  // Per-ET-message interference sets (fixed geometry across iterations).
  std::vector<EtInterference> et_sets(app.message_count());
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (app.messages()[m].cls != MessageClass::Dynamic) continue;
    EtInterference& et = et_sets[m];
    const std::size_t port = layout.egress_port(static_cast<MessageId>(m));
    const int prio = layout.config().et_priority[m];
    for (std::uint32_t j = 0; j < app.message_count(); ++j) {
      if (j == m || app.messages()[j].cls != MessageClass::Dynamic) continue;
      if (layout.egress_port(static_cast<MessageId>(j)) != port) continue;
      if (layout.config().et_priority[j] <= prio) {
        et.higher.push_back(j);
      } else {
        et.blocking = std::max(et.blocking, layout.duration(static_cast<MessageId>(j)));
      }
    }
  }

  bool converged = false;
  int fp_iterations = 0;
  int* const fp_out = counters != nullptr ? &fp_iterations : nullptr;
  for (int iter = 0; iter < options.max_holistic_iterations && !converged; ++iter) {
    if (counters != nullptr) ++counters->holistic_iterations;
    bool changed = false;

    // 1. Jitters of ET activities from predecessor completions.
    for (const ActivityRef a : app.topological_order()) {
      const bool is_et = a.is_task() ? app.task(a.as_task()).policy == TaskPolicy::Fps
                                     : app.message(a.as_message()).cls == MessageClass::Dynamic;
      if (!is_et) continue;
      Time jitter = a.is_task() ? app.task(a.as_task()).release_offset : 0;
      if (a.is_task() && a.index < external_task_jitter.size()) {
        const Time ext = external_task_jitter[a.index];
        jitter = is_infinite(ext) || is_infinite(jitter) ? kTimeInfinity : std::max(jitter, ext);
      }
      for (const ActivityRef p : app.predecessors(a)) {
        const Time pc = completion_of(p);
        jitter = is_infinite(pc) || is_infinite(jitter) ? kTimeInfinity : std::max(jitter, pc);
      }
      auto& slot = a.is_task() ? result.task_jitter[a.index] : result.message_jitter[a.index];
      if (slot != jitter) {
        slot = jitter;
        changed = true;
      }
    }

    // 2. FPS task response times per node (CPU scheduling is backend
    //    independent).
    for (std::size_t n = 0; n < app.node_count(); ++n) {
      auto& params = fps_on_node[n];
      for (auto& p : params) p.jitter = result.task_jitter[index_of(p.id)];
      const BusyProfile& profile = schedule.node_profile(n);
      for (const auto& p : params) {
        if (counters != nullptr) ++counters->fps_analyses;
        const Time r = fps_response_time(p, params, profile, horizon, fp_out);
        if (result.task_completion[index_of(p.id)] != r) {
          result.task_completion[index_of(p.id)] = r;
          changed = true;
        }
      }
    }

    // 3. ET message response times per egress port.
    for (std::uint32_t m = 0; m < app.message_count(); ++m) {
      if (app.messages()[m].cls != MessageClass::Dynamic) continue;
      if (counters != nullptr) ++counters->dyn_analyses;
      const Time r = tsn_et_response_time(layout, static_cast<MessageId>(m), et_sets[m],
                                          result.message_jitter, horizon, fp_out);
      if (result.message_completion[m] != r) {
        result.message_completion[m] = r;
        changed = true;
      }
    }

    if (options.debug_trace) {
      Time max_finite = 0;
      int infinite = 0;
      auto scan = [&](const std::vector<Time>& v) {
        for (const Time c : v) {
          if (is_infinite(c)) {
            ++infinite;
          } else {
            max_finite = std::max(max_finite, c);
          }
        }
      };
      scan(result.task_completion);
      scan(result.message_completion);
      log_debug("tsn holistic iter ", iter, ": changed=", changed,
                " max_finite=", format_time(max_finite), " infinite=", infinite);
    }
    converged = !changed;
  }

  result.converged = converged;
  if (counters != nullptr) {
    counters->fixed_point_iterations += static_cast<std::uint64_t>(fp_iterations);
  }
  if (!converged) {
    for (std::uint32_t t = 0; t < app.task_count(); ++t) {
      if (app.tasks()[t].policy == TaskPolicy::Fps) result.task_completion[t] = kTimeInfinity;
    }
    for (std::uint32_t m = 0; m < app.message_count(); ++m) {
      if (app.messages()[m].cls == MessageClass::Dynamic) {
        result.message_completion[m] = kTimeInfinity;
      }
    }
  }

  result.cost = evaluate_cost(app, result.task_completion, result.message_completion);
  return result;
}

}  // namespace flexopt
