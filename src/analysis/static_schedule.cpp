#include "flexopt/analysis/static_schedule.hpp"

#include <algorithm>

namespace flexopt {

StaticSchedule::StaticSchedule(Time hyperperiod, std::size_t node_count,
                               std::size_t task_count, std::size_t message_count)
    : hyperperiod_(hyperperiod),
      per_task_(task_count),
      per_message_(message_count),
      per_node_(node_count) {}

void StaticSchedule::add_task_entry(ScheduledTask entry, std::size_t node_index) {
  per_task_[index_of(entry.task)].push_back(entry);
  per_node_[node_index].push_back(entry);
}

void StaticSchedule::add_message_entry(ScheduledMessage entry) {
  per_message_[index_of(entry.message)].push_back(entry);
}

Time StaticSchedule::task_wcrt(TaskId t) const {
  const auto& entries = per_task_[index_of(t)];
  if (entries.empty()) return kTimeInfinity;
  Time worst = 0;
  for (const auto& e : entries) worst = std::max(worst, e.finish - e.release);
  return worst;
}

Time StaticSchedule::message_wcrt(MessageId m) const {
  const auto& entries = per_message_[index_of(m)];
  if (entries.empty()) return kTimeInfinity;
  Time worst = 0;
  for (const auto& e : entries) worst = std::max(worst, e.finish - e.release);
  return worst;
}

void StaticSchedule::finalize() {
  profiles_.clear();
  profiles_.reserve(per_node_.size());
  for (auto& entries : per_node_) {
    std::sort(entries.begin(), entries.end(),
              [](const ScheduledTask& a, const ScheduledTask& b) { return a.start < b.start; });
    std::vector<Interval> busy;
    busy.reserve(entries.size());
    for (const auto& e : entries) {
      // Wrap entries into [0, H): the table repeats with the hyper-period.
      const Time s = e.start % hyperperiod_;
      const Time f = s + (e.finish - e.start);
      if (f <= hyperperiod_) {
        busy.push_back({s, f});
      } else {
        busy.push_back({s, hyperperiod_});
        busy.push_back({0, f - hyperperiod_});
      }
    }
    profiles_.emplace_back(std::move(busy), hyperperiod_);
  }
}

}  // namespace flexopt
