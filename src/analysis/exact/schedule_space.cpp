#include "flexopt/analysis/exact/schedule_space.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "flexopt/analysis/sat_time.hpp"
#include "flexopt/flexray/bus_layout.hpp"

namespace flexopt {
namespace {

/// One DYN message's static exploration parameters.
struct DynMsg {
  std::uint32_t message = 0;  ///< MessageId value (index into app.messages())
  int fid = 0;
  int priority = 0;
  int minislots = 0;
  Time occupancy = 0;
  Time period = 0;
  Time jitter = 0;          ///< holistic release jitter (finite)
  std::uint32_t jobs = 0;   ///< jobs released in the exploration window
};

/// Fixed shard count, independent of the worker count: shard membership is
/// a pure function of the state key, so the merged frontier — and every
/// counter derived from it — cannot depend on the thread schedule.
constexpr std::size_t kShardBits = 5;
constexpr std::size_t kShards = std::size_t{1} << kShardBits;

/// FNV-1a over the transmitted-count words.  The top bits pick the shard,
/// the low bits probe the shard's open-addressing table, so the two uses
/// stay decorrelated.
std::uint64_t hash_key(const std::uint32_t* row, std::size_t width) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < width; ++i) {
    h ^= row[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::size_t shard_of(std::uint64_t hash) { return hash >> (64 - kShardBits); }

/// Persistent fork-join crew: `run(fn)` executes fn(worker) on every worker
/// (worker 0 is the calling thread) and returns when all are done.  One
/// worker degenerates to an inline call — no threads, no synchronisation.
class WorkerCrew {
 public:
  explicit WorkerCrew(int workers) : workers_(workers) {
    threads_.reserve(static_cast<std::size_t>(workers_ > 0 ? workers_ - 1 : 0));
    for (int w = 1; w < workers_; ++w) {
      threads_.emplace_back([this, w] { thread_main(w); });
    }
  }

  WorkerCrew(const WorkerCrew&) = delete;
  WorkerCrew& operator=(const WorkerCrew&) = delete;

  ~WorkerCrew() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  [[nodiscard]] int workers() const { return workers_; }

  void run(const std::function<void(int)>& fn) {
    if (workers_ <= 1) {
      fn(0);
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      fn_ = &fn;
      remaining_ = workers_ - 1;
      ++generation_;
    }
    start_cv_.notify_all();
    fn(0);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    fn_ = nullptr;
  }

 private:
  void thread_main(int worker) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* fn = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        fn = fn_;
      }
      (*fn)(worker);
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (--remaining_ == 0) done_cv_.notify_one();
      }
    }
  }

  int workers_;
  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* fn_ = nullptr;
  int remaining_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

/// A partially walked bus cycle: the next FrameID slot and an index into the
/// walk pool row holding the counts accumulated on this branch.
struct Walk {
  int fid = 1;
  std::int64_t counter = 1;
  Time slot_time = 0;
  std::size_t sent_at = 0;
};

/// Per-worker exploration scratch.  Successors are staged in `out[target
/// shard]` (flat SoA rows) — the lock-free handoff to the merge phase —
/// and counters accumulate cycle-locally before the deterministic
/// (order-independent) reduction at the barrier.
struct WorkerScratch {
  std::array<std::vector<std::uint32_t>, kShards> out;
  std::vector<Time> worst;            ///< per DynMsg worst finish - release
  std::uint64_t transitions = 0;      ///< terminal walks this cycle
  std::uint64_t pending = 0;          ///< successors routed (not all-done)
  std::vector<char> must;
  std::vector<char> ready;
  std::vector<std::size_t> maybe;
  std::vector<std::size_t> tied;
  std::vector<Walk> stack;
  std::vector<std::uint32_t> pool;    ///< walk rows, stride = dyn count
};

/// One frontier shard: unique state keys as flat SoA rows (stride = dyn
/// count), kept sorted lexicographically — the deterministic (key, order)
/// tie-break every phase iterates in.
using Shard = std::vector<std::uint32_t>;

bool row_all_done(const std::uint32_t* row, const std::vector<DynMsg>& dyn) {
  for (std::size_t i = 0; i < dyn.size(); ++i) {
    if (row[i] < dyn[i].jobs) return false;
  }
  return true;
}

bool row_less(const std::uint32_t* a, const std::uint32_t* b, std::size_t width) {
  return std::lexicographical_compare(a, a + width, b, b + width);
}

/// `b` covers `a`: pointwise b <= a over distinct keys — b is at least as
/// far behind everywhere, so b's reachable finishes include a's.
bool row_covers(const std::uint32_t* b, const std::uint32_t* a, std::size_t width) {
  bool covers = true;
  for (std::size_t i = 0; i < width; ++i) covers &= b[i] <= a[i];
  return covers;
}

/// Drops every row covered by another row of `rows` (the dependency-free
/// form of the dominance sweep: cover chains terminate at minimal elements,
/// so "covered by anyone" equals "covered by a survivor").  Returns the
/// number of rows dropped; survivors keep their relative order.
std::uint64_t dominance_sweep(Shard& rows, std::size_t width) {
  const std::size_t n = rows.size() / width;
  if (n < 2) return 0;
  std::vector<char> dead(n, 0);
  for (std::size_t a = 0; a < n; ++a) {
    const std::uint32_t* ra = rows.data() + a * width;
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      if (row_covers(rows.data() + b * width, ra, width)) {
        dead[a] = 1;
        break;
      }
    }
  }
  std::size_t write = 0;
  std::uint64_t dropped = 0;
  for (std::size_t a = 0; a < n; ++a) {
    if (dead[a] != 0) {
      ++dropped;
      continue;
    }
    if (write != a) {
      std::memmove(rows.data() + write * width, rows.data() + a * width,
                   width * sizeof(std::uint32_t));
    }
    ++write;
  }
  rows.resize(write * width);
  return dropped;
}

}  // namespace

ScheduleSpaceResult explore_dyn_schedule_space(const BusLayout& layout,
                                               std::span<const Time> message_jitter,
                                               Time horizon, const ExactOptions& options) {
  ScheduleSpaceResult result;

  // Entry validation: a zero state or branch budget cannot explore anything;
  // recording it as a converged empty exploration would silently publish
  // holistic bounds as "exact".
  if (options.max_states == 0 || options.max_branch_messages <= 0) {
    result.fallback = ExactFallback::InvalidOptions;
    return result;
  }

  const Application& app = layout.application();

  const auto hp_result = app.hyperperiod();
  if (!hp_result.ok()) {
    result.fallback = ExactFallback::NotConverged;
    return result;
  }
  const Time window = hp_result.value() * std::max(1, options.hyperperiods);

  std::vector<DynMsg> dyn;
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (app.messages()[m].cls != MessageClass::Dynamic) continue;
    DynMsg d;
    d.message = m;
    const auto id = static_cast<MessageId>(m);
    d.fid = layout.frame_id(id);
    d.priority = app.messages()[m].priority;
    d.minislots = layout.message_minislots(id);
    d.occupancy = layout.message_occupancy(id);
    d.period = app.graph(app.messages()[m].graph).period;
    d.jitter = m < message_jitter.size() ? message_jitter[m] : kTimeInfinity;
    if (is_infinite(d.jitter)) {
      result.fallback = ExactFallback::UnboundedJitter;
      return result;
    }
    d.jobs = static_cast<std::uint32_t>(window / d.period);
    dyn.push_back(d);
  }
  if (dyn.empty()) {
    result.fallback = ExactFallback::NoDynMessages;
    return result;
  }
  const std::size_t width = dyn.size();

  // Per-FrameID candidate groups in deterministic arbitration order; the
  // engine's CHI multiset orders by (priority, ready, job), so priority
  // decides between distinct ready messages and everything tied forks.
  const int max_fid = layout.max_frame_id();
  std::vector<std::vector<std::size_t>> by_fid(static_cast<std::size_t>(max_fid) + 1);
  for (std::size_t i = 0; i < width; ++i) by_fid[dyn[i].fid].push_back(i);
  for (auto& group : by_fid) {
    std::sort(group.begin(), group.end(), [&](std::size_t a, std::size_t b) {
      return std::make_pair(dyn[a].priority, dyn[a].message) <
             std::make_pair(dyn[b].priority, dyn[b].message);
    });
  }
  std::vector<std::int64_t> p_latest(static_cast<std::size_t>(max_fid) + 1, -1);
  for (int fid = 1; fid <= max_fid; ++fid) {
    NodeId owner{};
    if (layout.frame_id_owner(fid, &owner)) p_latest[fid] = layout.p_latest_tx(owner);
  }

  const Time cycle_len = layout.cycle_len();
  const Time st_len = layout.st_segment_len();
  const Time gd = layout.params().gd_minislot;
  const std::int64_t minislot_count = layout.config().minislot_count;
  const Time max_cycles = horizon / cycle_len + 1;
  // 2^k readiness subsets are enumerated through a 64-bit mask; anything
  // near that is hopeless anyway, so the branch cap is clamped well below.
  const auto max_branch =
      static_cast<std::size_t>(std::clamp(options.max_branch_messages, 1, 20));

  const int requested = options.jobs <= 0
                            ? static_cast<int>(std::thread::hardware_concurrency())
                            : options.jobs;
  const int workers = std::clamp(requested, 1, static_cast<int>(kShards));
  WorkerCrew crew(workers);

  std::array<Shard, kShards> frontier;
  std::array<Shard, kShards> next;
  {
    const std::vector<std::uint32_t> origin(width, 0);
    frontier[shard_of(hash_key(origin.data(), width))] = origin;
  }

  std::vector<WorkerScratch> scratch(static_cast<std::size_t>(workers));
  for (WorkerScratch& ws : scratch) {
    ws.worst.assign(width, 0);
    ws.must.assign(width, 0);
    ws.ready.assign(width, 0);
  }

  // Committed counters hold completed cycles only, so a mid-cycle abort
  // (branch blow-up) reports the same totals for every worker count.
  std::uint64_t transitions = 0;
  std::uint64_t merged = 0;
  Time cycle_start_ = 0;      ///< start of the cycle being expanded
  Time cycle_seg_start_ = 0;  ///< its DYN segment start
  std::atomic<bool> abort{false};
  std::atomic<std::size_t> cursor{0};
  std::array<std::uint64_t, kShards> shard_unique{};
  std::array<std::uint64_t, kShards> shard_dominated{};

  // Expansion phase: workers steal source shards off the shared cursor,
  // replay the per-state cycle walks, and stage successors per target shard.
  const auto expand = [&](int worker) {
    WorkerScratch& ws = scratch[static_cast<std::size_t>(worker)];
    ws.transitions = 0;
    ws.pending = 0;
    for (auto& bucket : ws.out) bucket.clear();
    for (std::size_t s = cursor.fetch_add(1, std::memory_order_relaxed); s < kShards;
         s = cursor.fetch_add(1, std::memory_order_relaxed)) {
      const Shard& rows = frontier[s];
      const std::size_t n_rows = rows.size() / width;
      for (std::size_t r = 0; r < n_rows; ++r) {
        if (abort.load(std::memory_order_relaxed)) return;
        const std::uint32_t* state = rows.data() + r * width;

        // Classify pending head jobs.  must: certainly in the CHI by the
        // earliest slot its FrameID can get (all earlier slots advancing by
        // one minislot); maybe: released before the cycle ends, so the
        // adversary chooses whether it arrived in time.
        ws.maybe.clear();
        for (std::size_t i = 0; i < width; ++i) {
          ws.must[i] = 0;
          if (state[i] >= dyn[i].jobs) continue;
          const Time release = static_cast<Time>(state[i]) * dyn[i].period;
          const Time earliest_slot =
              cycle_seg_start_ + static_cast<Time>(dyn[i].fid - 1) * gd;
          if (release + dyn[i].jitter <= earliest_slot) {
            ws.must[i] = 1;
          } else if (release < cycle_start_ + cycle_len) {
            ws.maybe.push_back(i);
          }
        }
        if (ws.maybe.size() > max_branch) {
          abort.store(true, std::memory_order_relaxed);
          return;
        }

        for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << ws.maybe.size());
             ++mask) {
          std::copy(ws.must.begin(), ws.must.end(), ws.ready.begin());
          for (std::size_t b = 0; b < ws.maybe.size(); ++b) {
            if ((mask >> b) & 1) ws.ready[ws.maybe[b]] = 1;
          }

          // Replay the DynSlot chain (sim/engine.cpp): one slot per FrameID,
          // stop when the FrameIDs or the minislots run out.
          ws.stack.clear();
          ws.pool.assign(state, state + width);
          ws.stack.push_back(Walk{1, 1, cycle_seg_start_, 0});
          while (!ws.stack.empty()) {
            Walk w = ws.stack.back();
            ws.stack.pop_back();
            if (w.fid > max_fid || w.counter > minislot_count) {
              ++ws.transitions;
              const std::uint32_t* sent = ws.pool.data() + w.sent_at;
              if (!row_all_done(sent, dyn)) {
                ++ws.pending;
                auto& bucket = ws.out[shard_of(hash_key(sent, width))];
                bucket.insert(bucket.end(), sent, sent + width);
              }
              continue;
            }
            ws.tied.clear();
            if (w.counter <= p_latest[static_cast<std::size_t>(w.fid)]) {
              int best_priority = 0;
              for (const std::size_t i : by_fid[static_cast<std::size_t>(w.fid)]) {
                if (ws.ready[i] == 0 || ws.pool[w.sent_at + i] >= dyn[i].jobs) continue;
                if (!ws.tied.empty() && dyn[i].priority != best_priority) break;
                best_priority = dyn[i].priority;
                ws.tied.push_back(i);
              }
            }
            if (ws.tied.empty()) {
              w.slot_time += gd;
              w.counter += 1;
              w.fid += 1;
              ws.stack.push_back(w);
              continue;
            }
            // Fork over every tied highest-priority candidate: the engine
            // breaks the tie by CHI arrival order, which the ready intervals
            // cannot resolve.
            for (const std::size_t i : ws.tied) {
              const std::size_t fork_at = ws.pool.size();
              ws.pool.resize(fork_at + width);
              std::copy_n(ws.pool.data() + w.sent_at, width, ws.pool.data() + fork_at);
              const Time finish = w.slot_time + dyn[i].occupancy;
              const Time release =
                  static_cast<Time>(ws.pool[fork_at + i]) * dyn[i].period;
              ws.worst[i] = std::max(ws.worst[i], finish - release);
              ws.pool[fork_at + i] += 1;
              Walk n = w;
              n.sent_at = fork_at;
              n.slot_time += static_cast<Time>(dyn[i].minislots) * gd;
              n.counter += dyn[i].minislots;
              n.fid += 1;
              ws.stack.push_back(n);
            }
          }
        }
      }
    }
  };

  // Merge phase: workers steal target shards; each shard dedups through an
  // open-addressing table, sorts the survivors by key, and dominance-prunes
  // shard-locally.  Shard contents are unions over worker buffers, so
  // nothing here depends on which worker produced a state.
  const auto merge = [&](int worker) {
    (void)worker;
    std::vector<std::uint32_t> slots;
    std::vector<std::size_t> order;
    for (std::size_t s = cursor.fetch_add(1, std::memory_order_relaxed); s < kShards;
         s = cursor.fetch_add(1, std::memory_order_relaxed)) {
      Shard& out = next[s];
      out.clear();
      shard_unique[s] = 0;
      shard_dominated[s] = 0;
      std::size_t candidates = 0;
      for (const WorkerScratch& ws : scratch) candidates += ws.out[s].size() / width;
      if (candidates == 0) continue;

      std::size_t table_size = 1;
      while (table_size < candidates * 2) table_size <<= 1;
      slots.assign(table_size, std::numeric_limits<std::uint32_t>::max());
      Shard unique;
      unique.reserve(candidates * width);
      std::uint32_t unique_count = 0;
      for (const WorkerScratch& ws : scratch) {
        const Shard& bucket = ws.out[s];
        for (std::size_t r = 0; r * width < bucket.size(); ++r) {
          const std::uint32_t* row = bucket.data() + r * width;
          std::size_t probe = hash_key(row, width) & (table_size - 1);
          for (;;) {
            const std::uint32_t at = slots[probe];
            if (at == std::numeric_limits<std::uint32_t>::max()) {
              slots[probe] = unique_count;
              unique.insert(unique.end(), row, row + width);
              ++unique_count;
              break;
            }
            if (std::equal(row, row + width, unique.data() + at * width)) break;
            probe = (probe + 1) & (table_size - 1);
          }
        }
      }
      shard_unique[s] = unique_count;

      // Sort by key: the deterministic (key, order) tie-break the next
      // cycle's expansion — and the final coverage scan — iterate in.
      order.resize(unique_count);
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return row_less(unique.data() + a * width, unique.data() + b * width, width);
      });
      out.resize(static_cast<std::size_t>(unique_count) * width);
      for (std::size_t i = 0; i < order.size(); ++i) {
        std::copy_n(unique.data() + order[i] * width, width, out.data() + i * width);
      }

      if (options.prune_dominated &&
          unique_count <= options.dominance_sweep_limit) {
        shard_dominated[s] = dominance_sweep(out, width);
      }
    }
  };

  for (Time cycle = 0; cycle < max_cycles; ++cycle) {
    std::uint64_t frontier_states = 0;
    for (const Shard& s : frontier) frontier_states += s.size() / width;
    if (frontier_states == 0) break;
    result.explored_states += frontier_states;
    if (result.explored_states > options.max_states) {
      result.fallback = ExactFallback::BudgetExceeded;
      result.transitions = transitions;
      result.merged_states = merged;
      return result;
    }
    cycle_start_ = cycle * cycle_len;
    cycle_seg_start_ = cycle_start_ + st_len;

    cursor.store(0, std::memory_order_relaxed);
    crew.run(expand);
    if (abort.load(std::memory_order_relaxed)) {
      result.fallback = ExactFallback::BudgetExceeded;
      result.transitions = transitions;
      result.merged_states = merged;
      return result;
    }

    cursor.store(0, std::memory_order_relaxed);
    crew.run(merge);

    // Deterministic reduction: sums and maxes over fixed index ranges.
    std::uint64_t pending = 0;
    std::uint64_t unique_total = 0;
    std::uint64_t dominated = 0;
    for (const WorkerScratch& ws : scratch) {
      transitions += ws.transitions;
      pending += ws.pending;
    }
    for (std::size_t s = 0; s < kShards; ++s) {
      unique_total += shard_unique[s];
      dominated += shard_dominated[s];
    }
    merged += pending - unique_total + dominated;

    // Small frontiers get the serial engine's cross-shard sweep: dominated
    // pairs usually hash to different shards, and when the frontier is small
    // the O(n^2) pass is cheap and prunes exactly where it matters.
    std::uint64_t survivors = 0;
    for (const Shard& s : next) survivors += s.size() / width;
    if (options.prune_dominated && survivors > 1 &&
        survivors <= options.dominance_sweep_limit) {
      Shard all;
      all.reserve(static_cast<std::size_t>(survivors) * width);
      for (const Shard& s : next) all.insert(all.end(), s.begin(), s.end());
      std::vector<char> dead(static_cast<std::size_t>(survivors), 0);
      for (std::size_t a = 0; a < survivors; ++a) {
        const std::uint32_t* ra = all.data() + a * width;
        for (std::size_t b = 0; b < survivors; ++b) {
          if (a == b) continue;
          if (row_covers(all.data() + b * width, ra, width)) {
            dead[a] = 1;
            break;
          }
        }
      }
      std::size_t at = 0;
      for (Shard& s : next) {
        std::size_t write = 0;
        const std::size_t n_rows = s.size() / width;
        for (std::size_t r = 0; r < n_rows; ++r, ++at) {
          if (dead[at] != 0) {
            ++merged;
            continue;
          }
          if (write != r) {
            std::memmove(s.data() + write * width, s.data() + r * width,
                         width * sizeof(std::uint32_t));
          }
          ++write;
        }
        s.resize(write * width);
      }
    }

    for (std::size_t s = 0; s < kShards; ++s) frontier[s].swap(next[s]);
  }
  result.transitions = transitions;
  result.merged_states = merged;

  // Publish caps.  A message is covered (refinable) only if every surviving
  // state — states that hit the cycle horizon with work left — has all of
  // its jobs transmitted; paths that completed everything were dropped from
  // the frontier and are covered by construction.
  std::vector<Time> worst(width, 0);
  for (const WorkerScratch& ws : scratch) {
    for (std::size_t i = 0; i < width; ++i) worst[i] = std::max(worst[i], ws.worst[i]);
  }
  result.worst_completion.assign(app.message_count(), kTimeInfinity);
  for (std::size_t i = 0; i < width; ++i) {
    bool covered = true;
    for (const Shard& s : frontier) {
      const std::size_t n_rows = s.size() / width;
      for (std::size_t r = 0; r < n_rows; ++r) {
        covered = covered && s[r * width + i] >= dyn[i].jobs;
      }
    }
    if (covered) result.worst_completion[dyn[i].message] = worst[i];
  }
  return result;
}

}  // namespace flexopt
