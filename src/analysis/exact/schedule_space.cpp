#include "flexopt/analysis/exact/schedule_space.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "flexopt/analysis/sat_time.hpp"
#include "flexopt/flexray/bus_layout.hpp"

namespace flexopt {
namespace {

/// One DYN message's static exploration parameters.
struct DynMsg {
  std::uint32_t message = 0;  ///< MessageId value (index into app.messages())
  int fid = 0;
  int priority = 0;
  int minislots = 0;
  Time occupancy = 0;
  Time period = 0;
  Time jitter = 0;          ///< holistic release jitter (finite)
  std::uint32_t jobs = 0;   ///< jobs released in the exploration window
};

/// State key: transmitted-job count per DYN message (DynMsg order).
using StateKey = std::vector<std::uint32_t>;

bool all_done(const StateKey& sent, const std::vector<DynMsg>& dyn) {
  for (std::size_t i = 0; i < dyn.size(); ++i) {
    if (sent[i] < dyn[i].jobs) return false;
  }
  return true;
}

/// A partially walked bus cycle: the next FrameID slot and the counts
/// accumulated so far on this branch.
struct CycleWalk {
  int fid = 1;
  std::int64_t counter = 1;
  Time slot_time = 0;
  StateKey sent;
};

}  // namespace

ScheduleSpaceResult explore_dyn_schedule_space(const BusLayout& layout,
                                               std::span<const Time> message_jitter,
                                               Time horizon, const ExactOptions& options) {
  ScheduleSpaceResult result;
  const Application& app = layout.application();

  const auto hp_result = app.hyperperiod();
  if (!hp_result.ok()) {
    result.fallback = ExactFallback::NotConverged;
    return result;
  }
  const Time window = hp_result.value() * std::max(1, options.hyperperiods);

  std::vector<DynMsg> dyn;
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (app.messages()[m].cls != MessageClass::Dynamic) continue;
    DynMsg d;
    d.message = m;
    const auto id = static_cast<MessageId>(m);
    d.fid = layout.frame_id(id);
    d.priority = app.messages()[m].priority;
    d.minislots = layout.message_minislots(id);
    d.occupancy = layout.message_occupancy(id);
    d.period = app.graph(app.messages()[m].graph).period;
    d.jitter = m < message_jitter.size() ? message_jitter[m] : kTimeInfinity;
    if (is_infinite(d.jitter)) {
      result.fallback = ExactFallback::UnboundedJitter;
      return result;
    }
    d.jobs = static_cast<std::uint32_t>(window / d.period);
    dyn.push_back(d);
  }
  if (dyn.empty()) {
    result.fallback = ExactFallback::NoDynMessages;
    return result;
  }

  // Per-FrameID candidate groups in deterministic arbitration order; the
  // engine's CHI multiset orders by (priority, ready, job), so priority
  // decides between distinct ready messages and everything tied forks.
  const int max_fid = layout.max_frame_id();
  std::vector<std::vector<std::size_t>> by_fid(static_cast<std::size_t>(max_fid) + 1);
  for (std::size_t i = 0; i < dyn.size(); ++i) by_fid[dyn[i].fid].push_back(i);
  for (auto& group : by_fid) {
    std::sort(group.begin(), group.end(), [&](std::size_t a, std::size_t b) {
      return std::make_pair(dyn[a].priority, dyn[a].message) <
             std::make_pair(dyn[b].priority, dyn[b].message);
    });
  }
  std::vector<std::int64_t> p_latest(static_cast<std::size_t>(max_fid) + 1, -1);
  for (int fid = 1; fid <= max_fid; ++fid) {
    NodeId owner{};
    if (layout.frame_id_owner(fid, &owner)) p_latest[fid] = layout.p_latest_tx(owner);
  }

  const Time cycle_len = layout.cycle_len();
  const Time st_len = layout.st_segment_len();
  const Time gd = layout.params().gd_minislot;
  const std::int64_t minislot_count = layout.config().minislot_count;
  const Time max_cycles = horizon / cycle_len + 1;

  // Worst explored finish per DYN message (graph-relative); only published
  // for messages whose jobs all complete on every surviving path.
  std::vector<Time> worst(dyn.size(), 0);

  std::set<StateKey> frontier;
  frontier.insert(StateKey(dyn.size(), 0));

  std::vector<std::size_t> maybe;
  std::vector<std::size_t> tied;
  std::vector<CycleWalk> stack;
  std::vector<char> must(dyn.size(), 0);
  std::vector<char> ready(dyn.size(), 0);
  // 2^k readiness subsets are enumerated through a 64-bit mask; anything
  // near that is hopeless anyway, so the branch cap is clamped well below.
  const auto max_branch = static_cast<std::size_t>(
      std::clamp(options.max_branch_messages, 0, 20));

  for (Time cycle = 0; cycle < max_cycles && !frontier.empty(); ++cycle) {
    result.explored_states += frontier.size();
    if (result.explored_states > options.max_states) {
      result.fallback = ExactFallback::BudgetExceeded;
      return result;
    }
    const Time cycle_start = cycle * cycle_len;
    const Time seg_start = cycle_start + st_len;
    std::set<StateKey> next;
    std::uint64_t inserted = 0;

    for (const StateKey& state : frontier) {
      // Classify pending head jobs.  must: certainly in the CHI by the
      // earliest slot its FrameID can get (all earlier slots advancing by
      // one minislot); maybe: released before the cycle ends, so the
      // adversary chooses whether it arrived in time.
      maybe.clear();
      for (std::size_t i = 0; i < dyn.size(); ++i) {
        must[i] = 0;
        if (state[i] >= dyn[i].jobs) continue;
        const Time release = static_cast<Time>(state[i]) * dyn[i].period;
        const Time earliest_slot = seg_start + static_cast<Time>(dyn[i].fid - 1) * gd;
        if (release + dyn[i].jitter <= earliest_slot) {
          must[i] = 1;
        } else if (release < cycle_start + cycle_len) {
          maybe.push_back(i);
        }
      }
      if (maybe.size() > max_branch) {
        result.fallback = ExactFallback::BudgetExceeded;
        return result;
      }

      for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << maybe.size()); ++mask) {
        std::copy(must.begin(), must.end(), ready.begin());
        for (std::size_t b = 0; b < maybe.size(); ++b) {
          if ((mask >> b) & 1) ready[maybe[b]] = 1;
        }

        // Replay the DynSlot chain (sim/engine.cpp): one slot per FrameID,
        // stop when the FrameIDs or the minislots run out.
        stack.clear();
        stack.push_back(CycleWalk{1, 1, seg_start, state});
        while (!stack.empty()) {
          CycleWalk w = std::move(stack.back());
          stack.pop_back();
          if (w.fid > max_fid || w.counter > minislot_count) {
            ++result.transitions;
            ++inserted;
            if (!all_done(w.sent, dyn)) next.insert(std::move(w.sent));
            continue;
          }
          tied.clear();
          if (w.counter <= p_latest[w.fid]) {
            int best_priority = 0;
            for (const std::size_t i : by_fid[w.fid]) {
              if (ready[i] == 0 || w.sent[i] >= dyn[i].jobs) continue;
              if (!tied.empty() && dyn[i].priority != best_priority) break;
              best_priority = dyn[i].priority;
              tied.push_back(i);
            }
          }
          if (tied.empty()) {
            w.slot_time += gd;
            w.counter += 1;
            w.fid += 1;
            stack.push_back(std::move(w));
            continue;
          }
          // Fork over every tied highest-priority candidate: the engine
          // breaks the tie by CHI arrival order, which the ready intervals
          // cannot resolve.
          for (const std::size_t i : tied) {
            CycleWalk n = w;
            const Time finish = n.slot_time + dyn[i].occupancy;
            const Time release = static_cast<Time>(n.sent[i]) * dyn[i].period;
            worst[i] = std::max(worst[i], finish - release);
            n.sent[i] += 1;
            n.slot_time += static_cast<Time>(dyn[i].minislots) * gd;
            n.counter += dyn[i].minislots;
            n.fid += 1;
            stack.push_back(std::move(n));
          }
        }
      }
    }

    result.merged_states += inserted - next.size();
    if (options.prune_dominated && next.size() > 1 &&
        next.size() <= options.dominance_sweep_limit) {
      // Drop states dominated by a strictly less progressed one.
      std::vector<StateKey> keys(next.begin(), next.end());
      std::vector<char> dead(keys.size(), 0);
      for (std::size_t a = 0; a < keys.size(); ++a) {
        for (std::size_t b = 0; b < keys.size() && dead[a] == 0; ++b) {
          if (a == b || dead[b] != 0) continue;
          bool covers = true;
          for (std::size_t i = 0; i < dyn.size() && covers; ++i) {
            covers = keys[b][i] <= keys[a][i];
          }
          if (covers) dead[a] = 1;  // keys differ (set), so b is strictly behind somewhere
        }
      }
      next.clear();
      for (std::size_t a = 0; a < keys.size(); ++a) {
        if (dead[a] == 0) {
          next.insert(std::move(keys[a]));
        } else {
          ++result.merged_states;
        }
      }
    }
    frontier = std::move(next);
  }

  // Publish caps.  A message is covered (refinable) only if every surviving
  // state — states that hit the cycle horizon with work left — has all of
  // its jobs transmitted; paths that completed everything were dropped from
  // the frontier and are covered by construction.
  result.worst_completion.assign(app.message_count(), kTimeInfinity);
  for (std::size_t i = 0; i < dyn.size(); ++i) {
    bool covered = true;
    for (const StateKey& state : frontier) {
      covered = covered && state[i] >= dyn[i].jobs;
    }
    if (covered) result.worst_completion[dyn[i].message] = worst[i];
  }
  return result;
}

}  // namespace flexopt
