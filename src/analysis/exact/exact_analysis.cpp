#include "flexopt/analysis/exact/exact_analysis.hpp"

#include <algorithm>
#include <utility>

#include "flexopt/analysis/incremental.hpp"
#include "flexopt/analysis/sat_time.hpp"
#include "flexopt/analysis/exact/schedule_space.hpp"
#include "flexopt/flexray/bus_layout.hpp"

namespace flexopt {
namespace {

bool has_dyn_messages(const Application& app) {
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (app.messages()[m].cls == MessageClass::Dynamic) return true;
  }
  return false;
}

bool has_unbounded_dyn_jitter(const Application& app, std::span<const Time> message_jitter) {
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (app.messages()[m].cls != MessageClass::Dynamic) continue;
    if (m >= message_jitter.size() || is_infinite(message_jitter[m])) return true;
  }
  return false;
}

/// Clamps a refined cluster result to the holistic reference bounds (the
/// minimum of two sound bounds is sound), counts the strict refinements,
/// and recomputes the cluster-local cost over the clamped completions.
void clamp_to_holistic(const Application& app, AnalysisResult& refined,
                       ExactClusterInfo& info) {
  for (std::size_t t = 0; t < refined.task_completion.size(); ++t) {
    refined.task_completion[t] =
        std::min(refined.task_completion[t], info.holistic_task_completion[t]);
  }
  for (std::size_t m = 0; m < refined.message_completion.size(); ++m) {
    refined.message_completion[m] =
        std::min(refined.message_completion[m], info.holistic_message_completion[m]);
    if (refined.message_completion[m] < info.holistic_message_completion[m]) {
      ++info.refined_messages;
    }
  }
  refined.cost = evaluate_cost(app, refined.task_completion, refined.message_completion);
}

/// Runs the exploration preconditions and, when they hold, the exploration
/// itself — through `cache`'s exact-space store when one is available and
/// ExactOptions::reuse_base_frontier is on (a hit replays the stored
/// frontier outcome verbatim, bit-identical to a cold run); returns the
/// caps to feed the re-run (empty on fallback) and records the outcome in
/// `info`.
std::vector<Time> explore_cluster(const BusLayout& layout, const AnalysisResult& holistic,
                                  const AnalysisOptions& options, ExactClusterInfo& info,
                                  AnalysisComponentCache* cache,
                                  AnalysisWorkCounters* counters) {
  const Application& app = layout.application();
  // Validated at entry: a zero budget must be a loud diagnostic, not a
  // silently converged empty exploration.
  if (options.exact.max_states == 0 || options.exact.max_branch_messages <= 0) {
    info.fallback = ExactFallback::InvalidOptions;
    return {};
  }
  if (!has_dyn_messages(app)) {
    info.fallback = ExactFallback::NoDynMessages;
    return {};
  }
  if (!holistic.converged) {
    info.fallback = ExactFallback::NotConverged;
    return {};
  }
  if (has_unbounded_dyn_jitter(app, holistic.message_jitter)) {
    info.fallback = ExactFallback::UnboundedJitter;
    return {};
  }
  const auto horizon = analysis_horizon(app, options);
  if (!horizon.ok()) {
    info.fallback = ExactFallback::NotConverged;
    return {};
  }
  ScheduleSpaceResult space;
  if (cache != nullptr && options.exact.reuse_base_frontier) {
    space = cache
                ->schedule_space_for(layout, holistic.message_jitter, horizon.value(),
                                     options.exact, counters)
                ->space;
  } else {
    space = explore_dyn_schedule_space(layout, holistic.message_jitter, horizon.value(),
                                       options.exact);
    if (counters != nullptr) {
      counters->exact_states_explored += space.explored_states;
      counters->exact_states_deduped += space.merged_states;
    }
  }
  info.explored_states = space.explored_states;
  info.merged_states = space.merged_states;
  info.transitions = space.transitions;
  info.fallback = space.fallback;
  if (space.fallback != ExactFallback::None) return {};
  return std::move(space.worst_completion);
}

}  // namespace

Expected<AnalysisResult> analyze_system_exact(const BusLayout& layout,
                                              const AnalysisOptions& options,
                                              AnalysisWorkCounters* counters,
                                              std::span<const Time> external_task_jitter,
                                              AnalysisComponentCache* cache) {
  AnalysisOptions holistic_options = options;
  holistic_options.mode = AnalysisMode::Holistic;
  auto holistic = analyze_system(layout, holistic_options, counters, external_task_jitter);
  if (!holistic.ok()) return holistic;
  AnalysisResult base = std::move(holistic).value();

  auto info = std::make_shared<ExactClusterInfo>();
  info->holistic_task_completion = base.task_completion;
  info->holistic_message_completion = base.message_completion;

  const std::vector<Time> caps = explore_cluster(layout, base, options, *info, cache, counters);
  if (info->fallback != ExactFallback::None) {
    base.exact = std::move(info);
    return base;
  }

  auto capped = analyze_system(layout, holistic_options, counters, external_task_jitter, caps);
  if (!capped.ok()) return capped;
  AnalysisResult refined = std::move(capped).value();
  if (!refined.converged) {
    // The capped fixed point should only converge faster; if it does not,
    // keep the holistic bounds rather than the pinned-to-infinity ones.
    info->fallback = ExactFallback::NotConverged;
    base.exact = std::move(info);
    return base;
  }
  clamp_to_holistic(layout.application(), refined, *info);
  refined.exact = std::move(info);
  return refined;
}

Expected<MulticlusterResult> analyze_multicluster_exact(
    const SystemModel& model, std::span<const ClusterLayout> layouts,
    const AnalysisOptions& options, const MulticlusterOptions& mc_options,
    std::span<AnalysisComponentCache* const> caches, AnalysisWorkCounters* counters) {
  AnalysisOptions holistic_options = options;
  holistic_options.mode = AnalysisMode::Holistic;
  auto holistic =
      analyze_multicluster(model, layouts, holistic_options, mc_options, caches, counters);
  if (!holistic.ok()) return holistic;
  MulticlusterResult base = std::move(holistic).value();

  const std::size_t C = model.cluster_count();
  std::vector<std::shared_ptr<ExactClusterInfo>> infos(C);
  std::vector<std::vector<Time>> caps(C);
  bool any_caps = false;
  for (std::size_t c = 0; c < C; ++c) {
    infos[c] = std::make_shared<ExactClusterInfo>();
    ExactClusterInfo& info = *infos[c];
    info.holistic_task_completion = base.clusters[c].task_completion;
    info.holistic_message_completion = base.clusters[c].message_completion;
    if (layouts[c].kind() != ClusterBackendKind::FlexRay) {
      info.fallback = ExactFallback::UnsupportedBackend;
      continue;
    }
    if (!base.converged) {
      info.fallback = ExactFallback::NotConverged;
      continue;
    }
    AnalysisComponentCache* cache = c < caches.size() ? caches[c] : nullptr;
    caps[c] = explore_cluster(layouts[c].flexray(), base.clusters[c], options, info, cache,
                              counters);
    any_caps = any_caps || info.fallback == ExactFallback::None;
  }

  auto attach = [&](MulticlusterResult& result) {
    for (std::size_t c = 0; c < C; ++c) result.clusters[c].exact = infos[c];
  };
  if (!any_caps) {
    attach(base);
    return base;
  }

  auto capped = analyze_multicluster(model, layouts, holistic_options, mc_options, caches,
                                     counters, caps);
  if (!capped.ok()) return capped;
  MulticlusterResult refined = std::move(capped).value();
  if (!refined.converged) {
    for (std::size_t c = 0; c < C; ++c) {
      if (infos[c]->fallback == ExactFallback::None) {
        infos[c]->fallback = ExactFallback::NotConverged;
      }
    }
    attach(base);
    return base;
  }

  CostAccumulator acc;
  for (std::size_t c = 0; c < C; ++c) {
    const Application& app = *model.cluster_app(c);
    clamp_to_holistic(app, refined.clusters[c], *infos[c]);
    acc.add(app, refined.clusters[c].task_completion, refined.clusters[c].message_completion);
  }
  refined.cost = model.single_cluster() ? refined.clusters[0].cost : acc.finish();
  attach(refined);
  return refined;
}

PessimismReport make_pessimism_report(std::span<const Application* const> apps,
                                      std::span<const AnalysisResult> clusters) {
  PessimismReport report;
  double gap_sum = 0.0;
  std::size_t gap_count = 0;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    const Application& app = *apps[c];
    const AnalysisResult& cluster = clusters[c];
    const ExactClusterInfo* info = cluster.exact.get();
    report.cluster_fallbacks.push_back(info != nullptr ? info->fallback
                                                       : ExactFallback::UnsupportedBackend);
    if (info == nullptr || info->fallback != ExactFallback::None) report.any_fallback = true;
    if (info != nullptr) {
      report.explored_states += info->explored_states;
      report.merged_states += info->merged_states;
    }
    auto add_entry = [&](bool is_task, std::uint32_t index, Time exact, Time holistic) {
      PessimismActivity entry;
      entry.cluster = c;
      entry.is_task = is_task;
      entry.index = index;
      entry.exact = exact;
      entry.holistic = holistic;
      ++report.activities;
      if (is_infinite(holistic)) {
        ++report.unbounded;
      } else if (holistic > 0) {
        const double gap =
            static_cast<double>(holistic - exact) / static_cast<double>(holistic);
        gap_sum += gap;
        ++gap_count;
        report.max_gap = std::max(report.max_gap, gap);
      }
      if (exact < holistic) ++report.refined;
      report.entries.push_back(entry);
    };
    for (std::uint32_t t = 0; t < app.task_count(); ++t) {
      if (app.tasks()[t].policy != TaskPolicy::Fps) continue;
      const Time holistic = info != nullptr && t < info->holistic_task_completion.size()
                                ? info->holistic_task_completion[t]
                                : cluster.task_completion[t];
      add_entry(true, t, cluster.task_completion[t], holistic);
    }
    for (std::uint32_t m = 0; m < app.message_count(); ++m) {
      if (app.messages()[m].cls != MessageClass::Dynamic) continue;
      const Time holistic = info != nullptr && m < info->holistic_message_completion.size()
                                ? info->holistic_message_completion[m]
                                : cluster.message_completion[m];
      add_entry(false, m, cluster.message_completion[m], holistic);
    }
  }
  if (gap_count > 0) report.mean_gap = gap_sum / static_cast<double>(gap_count);
  return report;
}

}  // namespace flexopt
