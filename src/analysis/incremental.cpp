#include "flexopt/analysis/incremental.hpp"

#include "flexopt/flexray/bus_layout.hpp"

#include <algorithm>

#include "flexopt/analysis/dyn_analysis.hpp"
#include "flexopt/analysis/list_scheduler.hpp"
#include "flexopt/analysis/sat_time.hpp"

namespace flexopt {
namespace {

/// FNV-1a, the same construction hash_config uses for the whole-config key.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  }
};

bool same_geometry(const ScheduleComponent& component, const BusConfig& config) {
  return component.static_slot_count == config.static_slot_count &&
         component.static_slot_len == config.static_slot_len &&
         component.minislot_count == config.minislot_count &&
         component.static_slot_owner == config.static_slot_owner;
}

ScheduleComponent build_schedule_component(const BusLayout& layout,
                                           const AnalysisOptions& options) {
  const Application& app = layout.application();
  const BusConfig& config = layout.config();
  ScheduleComponent component;
  component.static_slot_count = config.static_slot_count;
  component.static_slot_len = config.static_slot_len;
  component.static_slot_owner = config.static_slot_owner;
  component.minislot_count = config.minislot_count;

  auto schedule_result = build_static_schedule(layout, options.scheduler);
  if (!schedule_result.ok()) {
    component.error = schedule_result.error().message;
    return component;
  }
  component.valid = true;
  component.schedule = std::make_shared<const StaticSchedule>(std::move(schedule_result).value());
  component.tt_task_completion.assign(app.task_count(), 0);
  component.tt_message_completion.assign(app.message_count(), 0);
  for (std::uint32_t t = 0; t < app.task_count(); ++t) {
    if (app.tasks()[t].policy == TaskPolicy::Scs) {
      component.tt_task_completion[t] = component.schedule->task_wcrt(static_cast<TaskId>(t));
    }
  }
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (app.messages()[m].cls == MessageClass::Static) {
      component.tt_message_completion[m] =
          component.schedule->message_wcrt(static_cast<MessageId>(m));
    }
  }
  return component;
}

bool same_profile(const BusyProfile& a, const BusyProfile& b) {
  return a.period() == b.period() && a.intervals() == b.intervals();
}

/// The jitter slice the exploration actually reads: DYN messages only, in
/// ascending MessageId order (ST jitters must not perturb the key — an
/// ST-side move that leaves the DYN inputs untouched is exactly the reuse
/// case).  Out-of-range reads mirror the exploration's kTimeInfinity.
std::vector<Time> dyn_jitter_slice(const Application& app,
                                   std::span<const Time> message_jitter) {
  std::vector<Time> slice;
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (app.messages()[m].cls != MessageClass::Dynamic) continue;
    slice.push_back(m < message_jitter.size() ? message_jitter[m] : kTimeInfinity);
  }
  return slice;
}

bool same_exploration(const ExactSpaceComponent& component, std::uint64_t dyn_key,
                      const std::vector<Time>& dyn_jitter, Time horizon,
                      const ExactOptions& options) {
  return component.dyn_key == dyn_key && component.horizon == horizon &&
         component.options.same_semantics(options) &&
         component.message_jitter == dyn_jitter;
}

}  // namespace

ConfigSubHashes config_subhashes(const BusConfig& config) {
  ConfigSubHashes keys;
  Fnv geometry;
  geometry.mix(static_cast<std::uint64_t>(config.static_slot_count));
  geometry.mix(static_cast<std::uint64_t>(config.static_slot_len));
  geometry.mix(static_cast<std::uint64_t>(config.minislot_count));
  for (const NodeId owner : config.static_slot_owner) geometry.mix(index_of(owner));
  keys.geometry_key = geometry.h;

  Fnv dyn;
  dyn.mix(static_cast<std::uint64_t>(config.static_slot_count));
  dyn.mix(static_cast<std::uint64_t>(config.static_slot_len));
  dyn.mix(static_cast<std::uint64_t>(config.minislot_count));
  for (const int fid : config.frame_id) dyn.mix(static_cast<std::uint64_t>(fid));
  keys.dyn_key = dyn.h;
  return keys;
}

AnalysisComponentCache::AnalysisComponentCache(std::size_t max_entries)
    : max_entries_(max_entries) {}

std::shared_ptr<const ScheduleComponent> AnalysisComponentCache::schedule_for(
    const BusLayout& layout, const AnalysisOptions& options, AnalysisWorkCounters* counters) {
  const std::uint64_t key = config_subhashes(layout.config()).geometry_key;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = schedules_.find(key); it != schedules_.end()) {
      for (const auto& component : it->second) {
        if (same_geometry(*component, layout.config())) {
          if (counters != nullptr) ++counters->schedule_reuses;
          return component;
        }
      }
    }
  }
  if (counters != nullptr) ++counters->schedule_builds;
  auto component =
      std::make_shared<const ScheduleComponent>(build_schedule_component(layout, options));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Concurrent misses of the same geometry build redundantly (the build
    // is deterministic); keep whichever entry landed first so a race never
    // grows the bucket, and bound the cache by total components, not
    // hash-bucket count.
    auto& bucket = schedules_[key];
    for (const auto& existing : bucket) {
      if (same_geometry(*existing, layout.config())) return existing;
    }
    if (entry_count_ < max_entries_) {
      bucket.push_back(component);
      ++entry_count_;
    }
  }
  return component;
}

std::shared_ptr<const ExactSpaceComponent> AnalysisComponentCache::schedule_space_for(
    const BusLayout& layout, std::span<const Time> message_jitter, Time horizon,
    const ExactOptions& options, AnalysisWorkCounters* counters) {
  const std::uint64_t dyn_key = config_subhashes(layout.config()).dyn_key;
  std::vector<Time> dyn_jitter = dyn_jitter_slice(layout.application(), message_jitter);
  Fnv fnv;
  fnv.mix(dyn_key);
  fnv.mix(static_cast<std::uint64_t>(horizon));
  fnv.mix(options.max_states);
  fnv.mix(static_cast<std::uint64_t>(options.max_branch_messages));
  fnv.mix(options.prune_dominated ? 1 : 0);
  fnv.mix(options.dominance_sweep_limit);
  fnv.mix(static_cast<std::uint64_t>(options.hyperperiods));
  for (const Time j : dyn_jitter) fnv.mix(static_cast<std::uint64_t>(j));
  const std::uint64_t key = fnv.h;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = exact_spaces_.find(key); it != exact_spaces_.end()) {
      for (const auto& component : it->second) {
        if (same_exploration(*component, dyn_key, dyn_jitter, horizon, options)) {
          if (counters != nullptr) ++counters->exact_frontier_reused;
          return component;
        }
      }
    }
  }
  auto component = std::make_shared<ExactSpaceComponent>();
  component->dyn_key = dyn_key;
  component->horizon = horizon;
  component->options = options;
  component->message_jitter = std::move(dyn_jitter);
  component->space = explore_dyn_schedule_space(layout, message_jitter, horizon, options);
  if (counters != nullptr) {
    counters->exact_states_explored += component->space.explored_states;
    counters->exact_states_deduped += component->space.merged_states;
  }
  std::shared_ptr<const ExactSpaceComponent> stored = std::move(component);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Concurrent misses of the same key explore redundantly (deterministic
    // work); keep whichever entry landed first so a race never grows the
    // bucket, and bound the store by total entries like the schedules.
    auto& bucket = exact_spaces_[key];
    for (const auto& existing : bucket) {
      if (same_exploration(*existing, dyn_key, stored->message_jitter, horizon, options)) {
        return existing;
      }
    }
    if (exact_entry_count_ < max_entries_) {
      bucket.push_back(stored);
      ++exact_entry_count_;
    }
  }
  return stored;
}

std::shared_ptr<const TaskStructure> AnalysisComponentCache::task_structure(
    const Application& app, const AnalysisOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (task_structure_) return task_structure_;

  auto structure = std::make_shared<TaskStructure>();
  const auto horizon = analysis_horizon(app, options);
  if (!horizon.ok()) {
    structure->error = horizon.error().message;
  } else {
    TaskStructure& ts = *structure;
    ts.valid = true;
    ts.horizon = horizon.value();
    ts.n_tasks = static_cast<std::uint32_t>(app.task_count());
    ts.n_msgs = static_cast<std::uint32_t>(app.message_count());
    ts.n_nodes = static_cast<std::uint32_t>(app.node_count());
    ts.n_acts = ts.n_tasks + ts.n_msgs;

    // FPS templates as CSR grouped by node, ascending task index within a
    // node (the order the per-node vectors used to hold).
    ts.fps_node_begin.assign(ts.n_nodes + 1, 0);
    ts.fps_slot_of_task.assign(ts.n_tasks, -1);
    ts.task_node.resize(ts.n_tasks);
    for (std::uint32_t t = 0; t < ts.n_tasks; ++t) {
      const Task& task = app.tasks()[t];
      ts.task_node[t] = static_cast<std::uint32_t>(index_of(task.node));
      if (task.policy == TaskPolicy::Fps) ++ts.fps_node_begin[ts.task_node[t] + 1];
    }
    for (std::uint32_t n = 0; n < ts.n_nodes; ++n) {
      ts.fps_node_begin[n + 1] += ts.fps_node_begin[n];
    }
    ts.fps_params.resize(ts.fps_node_begin[ts.n_nodes]);
    std::vector<std::uint32_t> cursor(ts.fps_node_begin.begin(), ts.fps_node_begin.end() - 1);
    for (std::uint32_t t = 0; t < ts.n_tasks; ++t) {
      const Task& task = app.tasks()[t];
      if (task.policy != TaskPolicy::Fps) continue;
      const std::uint32_t slot = cursor[ts.task_node[t]]++;
      ts.fps_params[slot] = FpsTaskParams{static_cast<TaskId>(t), task.wcet,
                                          app.graph(task.graph).period, 0, task.priority};
      ts.fps_slot_of_task[t] = static_cast<std::int32_t>(slot);
    }

    // Dense DYN index space, ascending message index.
    ts.dyn_slot_of_msg.assign(ts.n_msgs, -1);
    ts.msg_priority.resize(ts.n_msgs);
    for (std::uint32_t m = 0; m < ts.n_msgs; ++m) {
      const Message& msg = app.messages()[m];
      ts.msg_priority[m] = msg.priority;
      if (msg.cls != MessageClass::Dynamic) continue;
      ts.dyn_slot_of_msg[m] = static_cast<std::int32_t>(ts.dyn_messages.size());
      ts.dyn_messages.push_back(m);
      ts.dyn_period.push_back(app.period_of(ActivityRef::message(static_cast<MessageId>(m))));
      ts.dyn_sender_node.push_back(app.task(msg.sender).node);
    }

    // aid-space arrays and the graph CSR, preserving Application's orders.
    ts.release_offset.assign(ts.n_acts, 0);
    ts.act_is_et.assign(ts.n_acts, 0);
    for (std::uint32_t t = 0; t < ts.n_tasks; ++t) {
      ts.release_offset[t] = app.tasks()[t].release_offset;
      ts.act_is_et[t] = app.tasks()[t].policy == TaskPolicy::Fps ? 1 : 0;
    }
    for (std::uint32_t m = 0; m < ts.n_msgs; ++m) {
      ts.act_is_et[ts.n_tasks + m] = app.messages()[m].cls == MessageClass::Dynamic ? 1 : 0;
    }
    const auto aid_of = [&ts](ActivityRef a) {
      return a.is_task() ? a.index : ts.n_tasks + a.index;
    };
    for (const ActivityRef a : app.topological_order()) {
      if (ts.act_is_et[aid_of(a)]) ts.et_topo.push_back(aid_of(a));
    }
    ts.pred_begin.assign(ts.n_acts + 1, 0);
    ts.succ_begin.assign(ts.n_acts + 1, 0);
    for (std::uint32_t aid = 0; aid < ts.n_acts; ++aid) {
      const ActivityRef ref = aid < ts.n_tasks
                                  ? ActivityRef::task(static_cast<TaskId>(aid))
                                  : ActivityRef::message(static_cast<MessageId>(aid - ts.n_tasks));
      for (const ActivityRef p : app.predecessors(ref)) ts.pred.push_back(aid_of(p));
      ts.pred_begin[aid + 1] = static_cast<std::uint32_t>(ts.pred.size());
      for (const ActivityRef s : app.successors(ref)) ts.succ.push_back(aid_of(s));
      ts.succ_begin[aid + 1] = static_cast<std::uint32_t>(ts.succ.size());
    }
  }
  task_structure_ = std::move(structure);
  return task_structure_;
}

void AnalysisComponentCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  schedules_.clear();
  entry_count_ = 0;
  exact_spaces_.clear();
  exact_entry_count_ = 0;
  // task_structure_ is configuration-independent: keep it.
}

std::size_t AnalysisComponentCache::schedule_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entry_count_;
}

std::size_t AnalysisComponentCache::exact_space_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return exact_entry_count_;
}

Expected<bool> analyze_system_incremental_into(const BusLayout& layout,
                                               const AnalysisOptions& options,
                                               AnalysisComponentCache& cache,
                                               AnalysisArena& arena, AnalysisResult& out,
                                               AnalysisWorkCounters* counters,
                                               const AnalysisResult* base,
                                               const AnalysisInvalidation* invalidation,
                                               std::span<const Time> external_task_jitter) {
  const Application& app = layout.application();
  const auto structure = cache.task_structure(app, options);
  if (!structure->valid) return make_error(structure->error);
  const Time horizon = structure->horizon;

  const auto schedule_component = cache.schedule_for(layout, options, counters);
  if (!schedule_component->valid) return make_error(schedule_component->error);

  arena.bind(structure);
  arena.prepare_dyn_geometry(layout);
  const TaskStructure& ts = *arena.structure;
  const std::uint32_t n_tasks = ts.n_tasks;
  const std::uint32_t n_acts = ts.n_acts;
  const std::size_t n_dyn = ts.dyn_messages.size();
  const StaticSchedule& schedule = *schedule_component->schedule;

  int fp_iterations = 0;
  int* const fp_out = counters != nullptr ? &fp_iterations : nullptr;

  out.schedule_ptr = schedule_component->schedule;

  // Unified per-aid state: completions seeded from the component's table
  // values (ET entries are 0, the monotone-from-below seed), jitters 0.
  std::vector<Time>& comp = arena.completion;
  std::vector<Time>& jit = arena.jitter;
  std::copy(schedule_component->tt_task_completion.begin(),
            schedule_component->tt_task_completion.end(), comp.begin());
  std::copy(schedule_component->tt_message_completion.begin(),
            schedule_component->tt_message_completion.end(), comp.begin() + n_tasks);
  std::fill(jit.begin(), jit.end(), 0);

  const std::span<const Time> msg_jitter{jit.data() + n_tasks, ts.n_msgs};

  // ---- affected component set ----------------------------------------------
  // Default (no usable base): everything is affected — the fixed point then
  // reproduces analyze_system's trajectory exactly, skipping only
  // recomputations whose inputs are unchanged between iterations.
  IndexBitset& affected = arena.affected;
  const bool seed_from_base = base != nullptr && invalidation != nullptr && base->converged &&
                              external_task_jitter.empty() &&
                              base->task_completion.size() == n_tasks &&
                              base->message_completion.size() == ts.n_msgs &&
                              base->task_jitter.size() == n_tasks &&
                              base->message_jitter.size() == ts.n_msgs;
  if (seed_from_base) {
    affected.clear();

    // Closure over the dependency edges of the holistic fixed point:
    //  completion(a) -> jitter(s) for every ET graph successor s;
    //  jitter(t), t FPS      -> completions of every FPS task on node(t);
    //  jitter(x), x DYN      -> completions of every DYN m, fid(m) >= fid(x)
    //                           (x is in lf(m) / hp(m) / is m itself).
    std::vector<std::uint32_t>& work = arena.work;
    work.clear();
    auto mark = [&](std::uint32_t aid) {
      if (arena.affected.test_set(aid)) return;
      work.push_back(aid);
    };
    auto mark_node_fps = [&](std::uint32_t node) {
      for (std::uint32_t i = ts.fps_node_begin[node]; i < ts.fps_node_begin[node + 1]; ++i) {
        mark(static_cast<std::uint32_t>(index_of(ts.fps_params[i].id)));
      }
    };
    // "Every DYN message with a FrameID >= fid" — lazily lowered threshold
    // so the marking stays O(|DYN|) overall.
    int dyn_marked_from = std::numeric_limits<int>::max();
    auto mark_dyn_from_fid = [&](int fid) {
      if (fid >= dyn_marked_from) return;
      for (std::size_t d = 0; d < n_dyn; ++d) {
        const int f = arena.dyn_prepared[d].fid;
        if (f >= fid && f < dyn_marked_from) mark(n_tasks + ts.dyn_messages[d]);
      }
      dyn_marked_from = fid;
    };
    // Jitter of ET activity `s` may change: mark the components whose read
    // set contains s's jitter.  FPS readers are exact (priority filter);
    // DYN readers with higher FrameIDs must all be marked — a single-
    // minislot lf member contributes through its jitter's infinity status,
    // which cannot be bounded statically here.
    auto mark_jitter_consumers = [&](std::uint32_t s) {
      if (s < n_tasks) {
        const std::int32_t slot = ts.fps_slot_of_task[s];
        if (slot < 0) return;
        const int s_priority = ts.fps_params[static_cast<std::uint32_t>(slot)].priority;
        const std::uint32_t node = ts.task_node[s];
        for (std::uint32_t i = ts.fps_node_begin[node]; i < ts.fps_node_begin[node + 1]; ++i) {
          const FpsTaskParams& u = ts.fps_params[i];
          if (s_priority <= u.priority || index_of(u.id) == s) {
            mark(static_cast<std::uint32_t>(index_of(u.id)));
          }
        }
      } else {
        const std::uint32_t sm = s - n_tasks;
        const std::int32_t sd = ts.dyn_slot_of_msg[sm];
        if (sd < 0) return;
        const int s_fid = arena.dyn_prepared[static_cast<std::uint32_t>(sd)].fid;
        mark(s);
        for (std::size_t d = 0; d < n_dyn; ++d) {
          const std::uint32_t m = ts.dyn_messages[d];
          if (arena.dyn_prepared[d].fid == s_fid &&
              ts.msg_priority[sm] < ts.msg_priority[m]) {
            mark(n_tasks + m);
          }
        }
        mark_dyn_from_fid(s_fid + 1);
      }
    };

    // Roots: components whose response function itself changed.  FrameID
    // changes only restructure the interference sets of messages whose
    // FrameID falls inside the window the move touched (messages above it
    // keep every changed message in lf() with identical weight/period;
    // messages below never saw them).
    if (invalidation->dyn_geometry_invalidated()) {
      mark_dyn_from_fid(1);
    } else if (invalidation->changed_message_count != 0) {
      for (std::size_t d = 0; d < n_dyn; ++d) {
        const int f = arena.dyn_prepared[d].fid;
        if (f >= invalidation->frame_id_window_min && f <= invalidation->frame_id_window_max) {
          mark(n_tasks + ts.dyn_messages[d]);
        }
      }
    }
    if (invalidation->schedule_invalidated()) {
      // The table was rebuilt: FPS groups whose busy profile moved, and ET
      // successors of TT activities whose table completion moved.
      for (std::uint32_t n = 0; n < ts.n_nodes; ++n) {
        if (ts.fps_node_begin[n] == ts.fps_node_begin[n + 1]) continue;
        if (base->schedule_ptr != out.schedule_ptr &&
            !same_profile(base->schedule().node_profile(n), schedule.node_profile(n))) {
          mark_node_fps(n);
        }
      }
      for (std::uint32_t aid = 0; aid < n_acts; ++aid) {
        if (ts.act_is_et[aid]) continue;  // roots are the TT activities
        const Time base_completion = aid < n_tasks
                                         ? base->task_completion[aid]
                                         : base->message_completion[aid - n_tasks];
        if (base_completion == comp[aid]) continue;
        for (std::uint32_t i = ts.succ_begin[aid]; i < ts.succ_begin[aid + 1]; ++i) {
          mark_jitter_consumers(ts.succ[i]);
        }
      }
    }
    while (!work.empty()) {
      const std::uint32_t aid = work.back();
      work.pop_back();
      for (std::uint32_t i = ts.succ_begin[aid]; i < ts.succ_begin[aid + 1]; ++i) {
        mark_jitter_consumers(ts.succ[i]);
      }
    }

    // Seed everything unaffected with the base's converged values; they are
    // already at the (unique) least fixed point and are never recomputed.
    for (std::uint32_t t = 0; t < n_tasks; ++t) {
      if (ts.act_is_et[t] != 0 && !affected.test(t)) {
        comp[t] = base->task_completion[t];
        jit[t] = base->task_jitter[t];
      }
    }
    for (std::uint32_t m = 0; m < ts.n_msgs; ++m) {
      if (ts.act_is_et[n_tasks + m] != 0 && !affected.test(n_tasks + m)) {
        comp[n_tasks + m] = base->message_completion[m];
        jit[n_tasks + m] = base->message_jitter[m];
      }
    }
  } else {
    affected.fill();
  }

  // ---- holistic fixed point over the affected components -------------------
  // Dirty tracking is per *component* with its exact jitter read set:
  //  * FPS task u reads the jitters of same-node tasks j with
  //    j.priority <= u.priority, plus its own;
  //  * DYN message m reads its own jitter, the jitters of hp(m) (same
  //    FrameID, higher priority), and those of lf(m) (lower FrameIDs) —
  //    where an lf member occupying a single minislot contributes through
  //    its jitter's *infinity status* only (zero excess otherwise).
  // A recomputation is skipped exactly when none of the component's read
  // jitters moved since its last recomputation, so a skip can never change
  // a value.
  IndexBitset& dirty = arena.dirty;
  auto reset_dirty = [&]() {
    dirty.clear();
    for (const FpsTaskParams& p : ts.fps_params) {
      const auto t = static_cast<std::uint32_t>(index_of(p.id));
      if (affected.test(t)) dirty.set(t);
    }
    for (const std::uint32_t m : ts.dyn_messages) {
      if (affected.test(n_tasks + m)) dirty.set(n_tasks + m);
    }
  };

  // Reverse read sets, applied on the fly (|DYN| and node groups are small).
  auto dirty_dyn_readers = [&](std::uint32_t x, bool infinity_flipped) {
    const auto xd = static_cast<std::uint32_t>(ts.dyn_slot_of_msg[x]);
    const int x_fid = arena.dyn_prepared[xd].fid;
    const bool x_has_excess = arena.dyn_excess[xd] > 0;
    for (std::size_t d = 0; d < n_dyn; ++d) {
      const std::uint32_t m = ts.dyn_messages[d];
      const std::uint32_t aid = n_tasks + m;
      if (!affected.test(aid) || dirty.test(aid)) continue;
      const int m_fid = arena.dyn_prepared[d].fid;
      const bool reads = m == x ||
                         (m_fid == x_fid && ts.msg_priority[x] < ts.msg_priority[m]) ||
                         (m_fid > x_fid && (x_has_excess || infinity_flipped));
      if (reads) dirty.set(aid);
    }
  };
  auto dirty_fps_readers = [&](std::uint32_t t) {
    const std::uint32_t node = ts.task_node[t];
    const int t_priority =
        ts.fps_params[static_cast<std::uint32_t>(ts.fps_slot_of_task[t])].priority;
    for (std::uint32_t i = ts.fps_node_begin[node]; i < ts.fps_node_begin[node + 1]; ++i) {
      const FpsTaskParams& u = ts.fps_params[i];
      if (index_of(u.id) == t || t_priority <= u.priority) {
        dirty.set(static_cast<std::uint32_t>(index_of(u.id)));
      }
    }
  };

  // Recomputes the jitter of ET activity `aid` from the current completions
  // and marks the components that read it; returns true when it moved.
  auto update_jitter = [&](std::uint32_t aid) {
    Time jitter = ts.release_offset[aid];
    if (aid < n_tasks && aid < external_task_jitter.size()) {
      const Time ext = external_task_jitter[aid];
      jitter = is_infinite(ext) || is_infinite(jitter) ? kTimeInfinity : std::max(jitter, ext);
    }
    for (std::uint32_t i = ts.pred_begin[aid]; i < ts.pred_begin[aid + 1]; ++i) {
      const Time pc = comp[ts.pred[i]];
      jitter = is_infinite(pc) || is_infinite(jitter) ? kTimeInfinity : std::max(jitter, pc);
    }
    Time& slot = jit[aid];
    if (slot == jitter) return false;
    const bool infinity_flipped = is_infinite(slot) != is_infinite(jitter);
    slot = jitter;
    if (aid < n_tasks) {
      dirty_fps_readers(aid);
    } else {
      dirty_dyn_readers(aid - n_tasks, infinity_flipped);
    }
    return true;
  };
  auto recompute_fps = [&](std::uint32_t t) {
    if (counters != nullptr) ++counters->fps_analyses;
    const std::uint32_t node = ts.task_node[t];
    const std::uint32_t begin = ts.fps_node_begin[node];
    const std::uint32_t end = ts.fps_node_begin[node + 1];
    const FpsTaskParams* self = nullptr;
    for (std::uint32_t i = begin; i < end; ++i) {
      FpsTaskParams& p = arena.fps_params[i];
      p.jitter = jit[index_of(p.id)];
      if (index_of(p.id) == t) self = &p;
    }
    const std::span<const FpsTaskParams> group{arena.fps_params.data() + begin, end - begin};
    const Time r = fps_response_time(*self, group, schedule.node_profile(node), horizon, fp_out);
    if (comp[t] == r) return false;
    comp[t] = r;
    return true;
  };
  auto recompute_dyn = [&](std::uint32_t m) {
    if (counters != nullptr) ++counters->dyn_analyses;
    const auto d = static_cast<std::uint32_t>(ts.dyn_slot_of_msg[m]);
    const std::span<const DynInterferer> hp{arena.hp_entries.data() + arena.hp_begin[d],
                                            arena.hp_begin[d + 1] - arena.hp_begin[d]};
    const std::span<const DynInterferer> lf{arena.lf_entries.data() + arena.lf_begin[d],
                                            arena.lf_begin[d + 1] - arena.lf_begin[d]};
    const DynResponse r =
        dyn_response_time_prepared(arena.dyn_prepared[d], hp, lf, msg_jitter, jit[n_tasks + m],
                                   horizon, options.dyn_bound, arena.scratch, fp_out);
    if (comp[n_tasks + m] == r.response) return false;
    comp[n_tasks + m] = r.response;
    return true;
  };

  // ---- stage 1: chaotic relaxation ----------------------------------------
  // One merged jitter+component pass per sweep, in topological order: a
  // completion updated early in a sweep feeds the jitters computed later in
  // the same sweep, so a dependency chain collapses into one sweep instead
  // of one sweep per hop.  The iteration is monotone from below under any
  // update order, so it converges to the same least fixed point the
  // analyze_system (Jacobi) schedule reaches — only *faster*, which is the
  // point.  When the sweep cap is hit, stage 2 below replays
  // analyze_system's exact schedule, reproducing its cap pinning bit for
  // bit (a sweep here dominates a Jacobi sweep pointwise, so hitting the
  // cap here implies the full path would not have converged either).
  bool converged = false;
  reset_dirty();
  for (int iter = 0; iter < options.max_holistic_iterations && !converged; ++iter) {
    if (counters != nullptr) ++counters->holistic_iterations;
    bool active = false;
    for (const std::uint32_t aid : ts.et_topo) {
      if (!affected.test(aid)) continue;
      active |= update_jitter(aid);
      if (aid < n_tasks) {
        if (!dirty.test(aid)) {
          if (counters != nullptr) ++counters->fps_skipped;
        } else {
          dirty.reset_bit(aid);
          active |= recompute_fps(aid);
        }
      } else {
        if (!dirty.test(aid)) {
          if (counters != nullptr) ++counters->dyn_skipped;
        } else {
          dirty.reset_bit(aid);
          active |= recompute_dyn(aid - n_tasks);
        }
      }
    }
    converged = !active;
  }

  // ---- stage 2: trajectory-exact fallback ----------------------------------
  // Replays analyze_system's Jacobi schedule from scratch (every component
  // affected), skipping only recomputations whose inputs are unchanged
  // between sweeps — value- and iteration-trajectory preserving, including
  // the iteration-cap pinning.
  if (!converged) {
    std::copy(schedule_component->tt_task_completion.begin(),
              schedule_component->tt_task_completion.end(), comp.begin());
    std::copy(schedule_component->tt_message_completion.begin(),
              schedule_component->tt_message_completion.end(), comp.begin() + n_tasks);
    std::fill(jit.begin(), jit.end(), 0);
    affected.fill();
    reset_dirty();
    for (int iter = 0; iter < options.max_holistic_iterations && !converged; ++iter) {
      if (counters != nullptr) ++counters->holistic_iterations;
      bool changed = false;
      // 1. Jitters of every ET activity from last sweep's completions.
      for (const std::uint32_t aid : ts.et_topo) changed |= update_jitter(aid);
      // 2. FPS response times where a read jitter moved (per node, in
      //    group order — the Jacobi sweep order).
      for (const FpsTaskParams& p : ts.fps_params) {
        const auto t = static_cast<std::uint32_t>(index_of(p.id));
        if (!dirty.test(t)) {
          if (counters != nullptr) ++counters->fps_skipped;
          continue;
        }
        dirty.reset_bit(t);
        changed |= recompute_fps(t);
      }
      // 3. DYN response times where a read jitter moved.
      for (const std::uint32_t m : ts.dyn_messages) {
        if (!dirty.test(n_tasks + m)) {
          if (counters != nullptr) ++counters->dyn_skipped;
          continue;
        }
        dirty.reset_bit(n_tasks + m);
        changed |= recompute_dyn(m);
      }
      converged = !changed;
    }
    if (!converged) {
      // Pin every ET completion to "unbounded" (analyze_system's cap
      // behaviour): a non-stabilised monotone value is not a safe bound.
      for (std::uint32_t aid = 0; aid < n_acts; ++aid) {
        if (ts.act_is_et[aid]) comp[aid] = kTimeInfinity;
      }
    }
  }

  out.converged = converged;
  out.task_completion.assign(comp.begin(), comp.begin() + n_tasks);
  out.message_completion.assign(comp.begin() + n_tasks, comp.end());
  out.task_jitter.assign(jit.begin(), jit.begin() + n_tasks);
  out.message_jitter.assign(jit.begin() + n_tasks, jit.end());
  out.cost = evaluate_cost(app, out.task_completion, out.message_completion);
  if (counters != nullptr) {
    counters->fixed_point_iterations += static_cast<std::uint64_t>(fp_iterations);
  }
  return true;
}

Expected<AnalysisResult> analyze_system_incremental(const BusLayout& layout,
                                                    const AnalysisOptions& options,
                                                    AnalysisComponentCache& cache,
                                                    AnalysisWorkCounters* counters,
                                                    const AnalysisResult* base,
                                                    const AnalysisInvalidation* invalidation,
                                                    std::span<const Time> external_task_jitter) {
  AnalysisArena arena;
  AnalysisResult out;
  const auto status = analyze_system_incremental_into(layout, options, cache, arena, out,
                                                      counters, base, invalidation,
                                                      external_task_jitter);
  if (!status.ok()) return status.error();
  return out;
}

}  // namespace flexopt
