#include "flexopt/analysis/incremental.hpp"

#include <algorithm>

#include "flexopt/analysis/dyn_analysis.hpp"
#include "flexopt/analysis/list_scheduler.hpp"
#include "flexopt/analysis/sat_time.hpp"

namespace flexopt {
namespace {

/// FNV-1a, the same construction hash_config uses for the whole-config key.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  }
};

bool is_et(const Application& app, ActivityRef a) {
  return a.is_task() ? app.task(a.as_task()).policy == TaskPolicy::Fps
                     : app.message(a.as_message()).cls == MessageClass::Dynamic;
}

bool same_geometry(const ScheduleComponent& component, const BusConfig& config) {
  return component.static_slot_count == config.static_slot_count &&
         component.static_slot_len == config.static_slot_len &&
         component.minislot_count == config.minislot_count &&
         component.static_slot_owner == config.static_slot_owner;
}

ScheduleComponent build_schedule_component(const BusLayout& layout,
                                           const AnalysisOptions& options) {
  const Application& app = layout.application();
  const BusConfig& config = layout.config();
  ScheduleComponent component;
  component.static_slot_count = config.static_slot_count;
  component.static_slot_len = config.static_slot_len;
  component.static_slot_owner = config.static_slot_owner;
  component.minislot_count = config.minislot_count;

  auto schedule_result = build_static_schedule(layout, options.scheduler);
  if (!schedule_result.ok()) {
    component.error = schedule_result.error().message;
    return component;
  }
  component.valid = true;
  component.schedule = std::move(schedule_result).value();
  component.tt_task_completion.assign(app.task_count(), 0);
  component.tt_message_completion.assign(app.message_count(), 0);
  for (std::uint32_t t = 0; t < app.task_count(); ++t) {
    if (app.tasks()[t].policy == TaskPolicy::Scs) {
      component.tt_task_completion[t] = component.schedule.task_wcrt(static_cast<TaskId>(t));
    }
  }
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (app.messages()[m].cls == MessageClass::Static) {
      component.tt_message_completion[m] =
          component.schedule.message_wcrt(static_cast<MessageId>(m));
    }
  }
  return component;
}

bool same_profile(const BusyProfile& a, const BusyProfile& b) {
  return a.period() == b.period() && a.intervals() == b.intervals();
}

}  // namespace

ConfigSubHashes config_subhashes(const BusConfig& config) {
  ConfigSubHashes keys;
  Fnv geometry;
  geometry.mix(static_cast<std::uint64_t>(config.static_slot_count));
  geometry.mix(static_cast<std::uint64_t>(config.static_slot_len));
  geometry.mix(static_cast<std::uint64_t>(config.minislot_count));
  for (const NodeId owner : config.static_slot_owner) geometry.mix(index_of(owner));
  keys.geometry_key = geometry.h;

  Fnv dyn;
  dyn.mix(static_cast<std::uint64_t>(config.static_slot_count));
  dyn.mix(static_cast<std::uint64_t>(config.static_slot_len));
  dyn.mix(static_cast<std::uint64_t>(config.minislot_count));
  for (const int fid : config.frame_id) dyn.mix(static_cast<std::uint64_t>(fid));
  keys.dyn_key = dyn.h;
  return keys;
}

AnalysisComponentCache::AnalysisComponentCache(std::size_t max_entries)
    : max_entries_(max_entries) {}

std::shared_ptr<const ScheduleComponent> AnalysisComponentCache::schedule_for(
    const BusLayout& layout, const AnalysisOptions& options, AnalysisWorkCounters* counters) {
  const std::uint64_t key = config_subhashes(layout.config()).geometry_key;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = schedules_.find(key); it != schedules_.end()) {
      for (const auto& component : it->second) {
        if (same_geometry(*component, layout.config())) {
          if (counters != nullptr) ++counters->schedule_reuses;
          return component;
        }
      }
    }
  }
  if (counters != nullptr) ++counters->schedule_builds;
  auto component =
      std::make_shared<const ScheduleComponent>(build_schedule_component(layout, options));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Concurrent misses of the same geometry build redundantly (the build
    // is deterministic); keep whichever entry landed first so a race never
    // grows the bucket, and bound the cache by total components, not
    // hash-bucket count.
    auto& bucket = schedules_[key];
    for (const auto& existing : bucket) {
      if (same_geometry(*existing, layout.config())) return existing;
    }
    if (entry_count_ < max_entries_) {
      bucket.push_back(component);
      ++entry_count_;
    }
  }
  return component;
}

std::shared_ptr<const TaskStructure> AnalysisComponentCache::task_structure(
    const Application& app, const AnalysisOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (task_structure_) return task_structure_;

  auto structure = std::make_shared<TaskStructure>();
  const auto horizon = analysis_horizon(app, options);
  if (!horizon.ok()) {
    structure->error = horizon.error().message;
  } else {
    structure->valid = true;
    structure->horizon = horizon.value();
    structure->fps_on_node.resize(app.node_count());
    for (std::uint32_t t = 0; t < app.task_count(); ++t) {
      const Task& task = app.tasks()[t];
      if (task.policy != TaskPolicy::Fps) continue;
      structure->fps_on_node[index_of(task.node)].push_back(FpsTaskParams{
          static_cast<TaskId>(t), task.wcet, app.graph(task.graph).period, 0, task.priority});
    }
    for (std::uint32_t m = 0; m < app.message_count(); ++m) {
      if (app.messages()[m].cls == MessageClass::Dynamic) structure->dyn_messages.push_back(m);
    }
  }
  task_structure_ = std::move(structure);
  return task_structure_;
}

void AnalysisComponentCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  schedules_.clear();
  entry_count_ = 0;
  // task_structure_ is configuration-independent: keep it.
}

std::size_t AnalysisComponentCache::schedule_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entry_count_;
}

Expected<AnalysisResult> analyze_system_incremental(const BusLayout& layout,
                                                    const AnalysisOptions& options,
                                                    AnalysisComponentCache& cache,
                                                    AnalysisWorkCounters* counters,
                                                    const AnalysisResult* base,
                                                    const AnalysisInvalidation* invalidation,
                                                    std::span<const Time> external_task_jitter) {
  const Application& app = layout.application();
  const auto structure = cache.task_structure(app, options);
  if (!structure->valid) return make_error(structure->error);
  const Time horizon = structure->horizon;

  const auto schedule_component = cache.schedule_for(layout, options, counters);
  if (!schedule_component->valid) return make_error(schedule_component->error);

  const std::size_t n_tasks = app.task_count();
  const std::size_t n_msgs = app.message_count();

  AnalysisResult result;
  result.schedule = schedule_component->schedule;
  result.task_completion = schedule_component->tt_task_completion;
  result.message_completion = schedule_component->tt_message_completion;
  result.task_jitter.assign(n_tasks, 0);
  result.message_jitter.assign(n_msgs, 0);

  // ---- affected component set ----------------------------------------------
  // Default (no usable base): everything is affected — the fixed point then
  // reproduces analyze_system's trajectory exactly, skipping only
  // recomputations whose inputs are unchanged between iterations.
  std::vector<char> task_affected(n_tasks, 1);
  std::vector<char> msg_affected(n_msgs, 1);
  const bool seed_from_base = base != nullptr && invalidation != nullptr && base->converged &&
                              external_task_jitter.empty() &&
                              base->task_completion.size() == n_tasks &&
                              base->message_completion.size() == n_msgs &&
                              base->task_jitter.size() == n_tasks &&
                              base->message_jitter.size() == n_msgs;
  if (seed_from_base) {
    task_affected.assign(n_tasks, 0);
    msg_affected.assign(n_msgs, 0);

    // Closure over the dependency edges of the holistic fixed point:
    //  completion(a) -> jitter(s) for every ET graph successor s;
    //  jitter(t), t FPS      -> completions of every FPS task on node(t);
    //  jitter(x), x DYN      -> completions of every DYN m, fid(m) >= fid(x)
    //                           (x is in lf(m) / hp(m) / is m itself).
    std::vector<ActivityRef> work;
    auto mark_task = [&](std::uint32_t t) {
      if (task_affected[t]) return;
      task_affected[t] = 1;
      work.push_back(ActivityRef::task(static_cast<TaskId>(t)));
    };
    auto mark_msg = [&](std::uint32_t m) {
      if (msg_affected[m]) return;
      msg_affected[m] = 1;
      work.push_back(ActivityRef::message(static_cast<MessageId>(m)));
    };
    auto mark_node_fps = [&](std::size_t node) {
      for (const FpsTaskParams& p : structure->fps_on_node[node]) {
        mark_task(static_cast<std::uint32_t>(index_of(p.id)));
      }
    };
    // "Every DYN message with a FrameID >= fid" — lazily lowered threshold
    // so the marking stays O(|DYN|) overall.
    int dyn_marked_from = std::numeric_limits<int>::max();
    auto mark_dyn_from_fid = [&](int fid) {
      if (fid >= dyn_marked_from) return;
      for (const std::uint32_t m : structure->dyn_messages) {
        const int f = layout.frame_id(static_cast<MessageId>(m));
        if (f >= fid && f < dyn_marked_from) mark_msg(m);
      }
      dyn_marked_from = fid;
    };
    // Jitter of ET activity `s` may change: mark the components whose read
    // set contains s's jitter.  FPS readers are exact (priority filter);
    // DYN readers with higher FrameIDs must all be marked — a single-
    // minislot lf member contributes through its jitter's infinity status,
    // which cannot be bounded statically here.
    const auto& app_messages = app.messages();
    auto mark_jitter_consumers = [&](ActivityRef s) {
      if (s.is_task()) {
        const Task& task = app.task(s.as_task());
        if (task.policy != TaskPolicy::Fps) return;
        for (const FpsTaskParams& u : structure->fps_on_node[index_of(task.node)]) {
          if (task.priority <= u.priority || index_of(u.id) == s.index) {
            mark_task(static_cast<std::uint32_t>(index_of(u.id)));
          }
        }
      } else if (app.message(s.as_message()).cls == MessageClass::Dynamic) {
        const int s_fid = layout.frame_id(s.as_message());
        mark_msg(s.index);
        for (const std::uint32_t m : structure->dyn_messages) {
          const int m_fid = layout.frame_id(static_cast<MessageId>(m));
          if (m_fid == s_fid && app_messages[s.index].priority < app_messages[m].priority) {
            mark_msg(m);
          }
        }
        mark_dyn_from_fid(s_fid + 1);
      }
    };

    // Roots: components whose response function itself changed.  FrameID
    // changes only restructure the interference sets of messages whose
    // FrameID falls inside the window the move touched (messages above it
    // keep every changed message in lf() with identical weight/period;
    // messages below never saw them).
    if (invalidation->dyn_geometry_invalidated()) {
      mark_dyn_from_fid(1);
    } else if (!invalidation->changed_messages.empty()) {
      for (const std::uint32_t m : structure->dyn_messages) {
        const int f = layout.frame_id(static_cast<MessageId>(m));
        if (f >= invalidation->frame_id_window_min &&
            f <= invalidation->frame_id_window_max) {
          mark_msg(m);
        }
      }
    }
    if (invalidation->schedule_invalidated()) {
      // The table was rebuilt: FPS groups whose busy profile moved, and ET
      // successors of TT activities whose table completion moved.
      for (std::size_t n = 0; n < app.node_count(); ++n) {
        if (structure->fps_on_node[n].empty()) continue;
        if (!same_profile(base->schedule.node_profile(n), result.schedule.node_profile(n))) {
          mark_node_fps(n);
        }
      }
      for (std::uint32_t t = 0; t < n_tasks; ++t) {
        if (app.tasks()[t].policy != TaskPolicy::Scs) continue;
        if (base->task_completion[t] == result.task_completion[t]) continue;
        for (const ActivityRef s :
             app.successors(ActivityRef::task(static_cast<TaskId>(t)))) {
          mark_jitter_consumers(s);
        }
      }
      for (std::uint32_t m = 0; m < n_msgs; ++m) {
        if (app.messages()[m].cls != MessageClass::Static) continue;
        if (base->message_completion[m] == result.message_completion[m]) continue;
        for (const ActivityRef s :
             app.successors(ActivityRef::message(static_cast<MessageId>(m)))) {
          mark_jitter_consumers(s);
        }
      }
    }
    while (!work.empty()) {
      const ActivityRef a = work.back();
      work.pop_back();
      for (const ActivityRef s : app.successors(a)) mark_jitter_consumers(s);
    }

    // Seed everything unaffected with the base's converged values; they are
    // already at the (unique) least fixed point and are never recomputed.
    for (std::uint32_t t = 0; t < n_tasks; ++t) {
      if (app.tasks()[t].policy != TaskPolicy::Fps) continue;
      if (!task_affected[t]) {
        result.task_completion[t] = base->task_completion[t];
        result.task_jitter[t] = base->task_jitter[t];
      }
    }
    for (std::uint32_t m = 0; m < n_msgs; ++m) {
      if (app.messages()[m].cls != MessageClass::Dynamic) continue;
      if (!msg_affected[m]) {
        result.message_completion[m] = base->message_completion[m];
        result.message_jitter[m] = base->message_jitter[m];
      }
    }
  }

  // ---- holistic fixed point over the affected components -------------------
  // Dirty tracking is per *component* with its exact jitter read set:
  //  * FPS task u reads the jitters of same-node tasks j with
  //    j.priority <= u.priority, plus its own;
  //  * DYN message m reads its own jitter, the jitters of hp(m) (same
  //    FrameID, higher priority), and those of lf(m) (lower FrameIDs) —
  //    where an lf member occupying a single minislot contributes through
  //    its jitter's *infinity status* only (zero excess otherwise).
  // A recomputation is skipped exactly when none of the component's read
  // jitters moved since its last recomputation, so a skip can never change
  // a value.

  // Mutable copy of the FPS parameter groups (jitter slots are refreshed in
  // place before each recomputation).
  std::vector<std::vector<FpsTaskParams>> fps_on_node = structure->fps_on_node;
  std::vector<char> task_dirty(n_tasks, 0);
  std::vector<char> dyn_dirty(n_msgs, 0);
  auto reset_dirty = [&]() {
    for (std::uint32_t t = 0; t < n_tasks; ++t) {
      task_dirty[t] = task_affected[t] != 0 && app.tasks()[t].policy == TaskPolicy::Fps;
    }
    for (const std::uint32_t m : structure->dyn_messages) dyn_dirty[m] = msg_affected[m];
  };

  // Reverse read sets, applied on the fly (|DYN| and nodes are small).
  const auto& messages = app.messages();
  auto dirty_dyn_readers = [&](std::uint32_t x, bool infinity_flipped) {
    const int x_fid = layout.frame_id(static_cast<MessageId>(x));
    const bool x_has_excess = layout.message_minislots(static_cast<MessageId>(x)) > 1;
    for (const std::uint32_t m : structure->dyn_messages) {
      if (!msg_affected[m] || dyn_dirty[m]) continue;
      const int m_fid = layout.frame_id(static_cast<MessageId>(m));
      const bool reads = m == x ||
                         (m_fid == x_fid && messages[x].priority < messages[m].priority) ||
                         (m_fid > x_fid && (x_has_excess || infinity_flipped));
      if (reads) dyn_dirty[m] = 1;
    }
  };
  auto dirty_fps_readers = [&](std::uint32_t t) {
    const Task& task = app.tasks()[t];
    for (const FpsTaskParams& u : fps_on_node[index_of(task.node)]) {
      if (index_of(u.id) == t || task.priority <= u.priority) {
        task_dirty[index_of(u.id)] = 1;
      }
    }
  };

  auto completion_of = [&](ActivityRef a) {
    return a.is_task() ? result.task_completion[a.index] : result.message_completion[a.index];
  };
  // Recomputes the jitter of ET activity `a` from the current completions
  // and marks the components that read it; returns true when it moved.
  auto update_jitter = [&](ActivityRef a) {
    Time jitter = a.is_task() ? app.task(a.as_task()).release_offset : 0;
    if (a.is_task() && a.index < external_task_jitter.size()) {
      const Time ext = external_task_jitter[a.index];
      jitter = is_infinite(ext) || is_infinite(jitter) ? kTimeInfinity : std::max(jitter, ext);
    }
    for (const ActivityRef p : app.predecessors(a)) {
      const Time pc = completion_of(p);
      jitter = is_infinite(pc) || is_infinite(jitter) ? kTimeInfinity : std::max(jitter, pc);
    }
    auto& slot = a.is_task() ? result.task_jitter[a.index] : result.message_jitter[a.index];
    if (slot == jitter) return false;
    const bool infinity_flipped = is_infinite(slot) != is_infinite(jitter);
    slot = jitter;
    if (a.is_task()) {
      dirty_fps_readers(a.index);
    } else {
      dirty_dyn_readers(a.index, infinity_flipped);
    }
    return true;
  };
  auto recompute_fps = [&](std::uint32_t t) {
    if (counters != nullptr) ++counters->fps_analyses;
    const std::size_t n = index_of(app.tasks()[t].node);
    auto& params = fps_on_node[n];
    const FpsTaskParams* self = nullptr;
    for (auto& p : params) {
      p.jitter = result.task_jitter[index_of(p.id)];
      if (index_of(p.id) == t) self = &p;
    }
    const Time r = fps_response_time(*self, params, result.schedule.node_profile(n), horizon);
    if (result.task_completion[t] == r) return false;
    result.task_completion[t] = r;
    return true;
  };
  auto recompute_dyn = [&](std::uint32_t m) {
    if (counters != nullptr) ++counters->dyn_analyses;
    const DynResponse r = dyn_response_time(layout, static_cast<MessageId>(m),
                                            result.message_jitter, horizon,
                                            options.dyn_bound);
    if (result.message_completion[m] == r.response) return false;
    result.message_completion[m] = r.response;
    return true;
  };

  // ---- stage 1: chaotic relaxation ----------------------------------------
  // One merged jitter+component pass per sweep, in topological order: a
  // completion updated early in a sweep feeds the jitters computed later in
  // the same sweep, so a dependency chain collapses into one sweep instead
  // of one sweep per hop.  The iteration is monotone from below under any
  // update order, so it converges to the same least fixed point the
  // analyze_system (Jacobi) schedule reaches — only *faster*, which is the
  // point.  When the sweep cap is hit, stage 2 below replays
  // analyze_system's exact schedule, reproducing its cap pinning bit for
  // bit (a sweep here dominates a Jacobi sweep pointwise, so hitting the
  // cap here implies the full path would not have converged either).
  bool converged = false;
  reset_dirty();
  for (int iter = 0; iter < options.max_holistic_iterations && !converged; ++iter) {
    if (counters != nullptr) ++counters->holistic_iterations;
    bool active = false;
    for (const ActivityRef a : app.topological_order()) {
      if (!is_et(app, a)) continue;
      const bool affected = a.is_task() ? task_affected[a.index] != 0
                                        : msg_affected[a.index] != 0;
      if (!affected) continue;
      active |= update_jitter(a);
      if (a.is_task()) {
        if (!task_dirty[a.index]) {
          if (counters != nullptr) ++counters->fps_skipped;
        } else {
          task_dirty[a.index] = 0;
          active |= recompute_fps(a.index);
        }
      } else {
        if (!dyn_dirty[a.index]) {
          if (counters != nullptr) ++counters->dyn_skipped;
        } else {
          dyn_dirty[a.index] = 0;
          active |= recompute_dyn(a.index);
        }
      }
    }
    converged = !active;
  }

  // ---- stage 2: trajectory-exact fallback ----------------------------------
  // Replays analyze_system's Jacobi schedule from scratch (every component
  // affected), skipping only recomputations whose inputs are unchanged
  // between sweeps — value- and iteration-trajectory preserving, including
  // the iteration-cap pinning.
  if (!converged) {
    result.task_completion = schedule_component->tt_task_completion;
    result.message_completion = schedule_component->tt_message_completion;
    result.task_jitter.assign(n_tasks, 0);
    result.message_jitter.assign(n_msgs, 0);
    task_affected.assign(n_tasks, 1);
    msg_affected.assign(n_msgs, 1);
    reset_dirty();
    for (int iter = 0; iter < options.max_holistic_iterations && !converged; ++iter) {
      if (counters != nullptr) ++counters->holistic_iterations;
      bool changed = false;
      // 1. Jitters of every ET activity from last sweep's completions.
      for (const ActivityRef a : app.topological_order()) {
        if (is_et(app, a)) changed |= update_jitter(a);
      }
      // 2. FPS response times where a read jitter moved.
      for (std::size_t n = 0; n < app.node_count(); ++n) {
        for (const FpsTaskParams& p : fps_on_node[n]) {
          const std::uint32_t t = static_cast<std::uint32_t>(index_of(p.id));
          if (!task_dirty[t]) {
            if (counters != nullptr) ++counters->fps_skipped;
            continue;
          }
          task_dirty[t] = 0;
          changed |= recompute_fps(t);
        }
      }
      // 3. DYN response times where a read jitter moved.
      for (const std::uint32_t m : structure->dyn_messages) {
        if (!dyn_dirty[m]) {
          if (counters != nullptr) ++counters->dyn_skipped;
          continue;
        }
        dyn_dirty[m] = 0;
        changed |= recompute_dyn(m);
      }
      converged = !changed;
    }
    if (!converged) {
      for (std::uint32_t t = 0; t < n_tasks; ++t) {
        if (app.tasks()[t].policy == TaskPolicy::Fps) {
          result.task_completion[t] = kTimeInfinity;
        }
      }
      for (std::uint32_t m = 0; m < n_msgs; ++m) {
        if (app.messages()[m].cls == MessageClass::Dynamic) {
          result.message_completion[m] = kTimeInfinity;
        }
      }
    }
  }

  result.converged = converged;
  result.cost = evaluate_cost(app, result.task_completion, result.message_completion);
  return result;
}

}  // namespace flexopt
