#include "flexopt/analysis/analysis_mode.hpp"

#include <array>
#include <string>

#include "flexopt/util/suggest.hpp"

namespace flexopt {

const char* to_string(AnalysisMode mode) {
  switch (mode) {
    case AnalysisMode::Holistic:
      return "holistic";
    case AnalysisMode::Exact:
      return "exact";
    case AnalysisMode::Simulate:
      return "simulate";
  }
  return "?";
}

Expected<AnalysisMode> parse_analysis_mode(std::string_view text) {
  if (text == "holistic") return AnalysisMode::Holistic;
  if (text == "exact") return AnalysisMode::Exact;
  if (text == "simulate") return AnalysisMode::Simulate;
  static constexpr std::array<std::string_view, 3> kModes = {"holistic", "exact",
                                                             "simulate"};
  return make_error("unknown analysis mode '" + std::string(text) +
                    "' (expected holistic, exact, or simulate)" +
                    suggest_hint(text, kModes));
}

const char* to_string(ExactFallback fallback) {
  switch (fallback) {
    case ExactFallback::None:
      return "none";
    case ExactFallback::UnsupportedBackend:
      return "unsupported-backend";
    case ExactFallback::NoDynMessages:
      return "no-dyn-messages";
    case ExactFallback::NotConverged:
      return "not-converged";
    case ExactFallback::UnboundedJitter:
      return "unbounded-jitter";
    case ExactFallback::BudgetExceeded:
      return "budget-exceeded";
    case ExactFallback::InvalidOptions:
      return "invalid-options";
  }
  return "?";
}

}  // namespace flexopt
