#include "flexopt/analysis/analysis_mode.hpp"

#include <string>

namespace flexopt {

const char* to_string(AnalysisMode mode) {
  switch (mode) {
    case AnalysisMode::Holistic:
      return "holistic";
    case AnalysisMode::Exact:
      return "exact";
    case AnalysisMode::Simulate:
      return "simulate";
  }
  return "?";
}

Expected<AnalysisMode> parse_analysis_mode(std::string_view text) {
  if (text == "holistic") return AnalysisMode::Holistic;
  if (text == "exact") return AnalysisMode::Exact;
  if (text == "simulate") return AnalysisMode::Simulate;
  return make_error("unknown analysis mode '" + std::string(text) +
                    "' (expected holistic, exact, or simulate)");
}

const char* to_string(ExactFallback fallback) {
  switch (fallback) {
    case ExactFallback::None:
      return "none";
    case ExactFallback::UnsupportedBackend:
      return "unsupported-backend";
    case ExactFallback::NoDynMessages:
      return "no-dyn-messages";
    case ExactFallback::NotConverged:
      return "not-converged";
    case ExactFallback::UnboundedJitter:
      return "unbounded-jitter";
    case ExactFallback::BudgetExceeded:
      return "budget-exceeded";
  }
  return "?";
}

}  // namespace flexopt
