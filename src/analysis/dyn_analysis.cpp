#include "flexopt/analysis/dyn_analysis.hpp"

#include "flexopt/flexray/bus_layout.hpp"

#include <algorithm>
#include <vector>

#include "flexopt/analysis/sat_time.hpp"
#include "flexopt/math/fixed_point.hpp"

namespace flexopt {

Time dyn_sigma(const BusLayout& layout, MessageId m) {
  const int fid = layout.frame_id(m);
  const Time earliest_slot_pass =
      layout.st_segment_len() + static_cast<Time>(fid - 1) * layout.params().gd_minislot;
  return layout.cycle_len() - earliest_slot_pass;
}

namespace {

/// Largest k such that k cycles can each collect `need` excess minislots
/// when message j supplies at most min(n_j, k) instances of weight w_j
/// (at most one transmission per FrameID slot per cycle).  Monotone in k,
/// so binary search applies; k is bounded by floor(total / need).
std::int64_t multiplicity_capped_fill(std::span<const std::int64_t> counts,
                                      std::span<const std::int64_t> weights,
                                      std::int64_t need) {
  std::int64_t total = 0;
  for (std::size_t j = 0; j < counts.size(); ++j) total += counts[j] * weights[j];
  std::int64_t lo = 0;
  std::int64_t hi = total / need;
  while (lo < hi) {
    const std::int64_t k = lo + (hi - lo + 1) / 2;
    std::int64_t usable = 0;
    for (std::size_t j = 0; j < counts.size(); ++j) {
      usable += weights[j] * std::min(counts[j], k);
    }
    if (usable >= k * need) {
      lo = k;
    } else {
      hi = k - 1;
    }
  }
  return lo;
}

}  // namespace

DynResponse dyn_response_time_prepared(const DynPrepared& in, std::span<const DynInterferer> hp,
                                       std::span<const DynInterferer> lf,
                                       std::span<const Time> msg_jitter, Time own_jitter,
                                       Time horizon, DynCyclesBound bound, DynScratch& scratch,
                                       int* fp_iterations) {
  DynResponse out;

  // With all lower slots empty the counter reads `fid` at m's slot; if that
  // already exceeds pLatestTx the message can never be transmitted.
  if (in.fid > in.p_latest) return out;
  out.transmittable = true;

  if (is_infinite(own_jitter)) return out;

  // Gather the interference inputs into the reusable scratch arrays
  // (clear() keeps capacity: no allocation at steady state).
  scratch.hp_jitter.clear();
  scratch.hp_period.clear();
  for (const DynInterferer& i : hp) {
    const Time jj = msg_jitter[i.msg];
    if (is_infinite(jj)) return out;  // unbounded interference
    scratch.hp_jitter.push_back(jj);
    scratch.hp_period.push_back(i.period);
  }
  scratch.lf_jitter.clear();
  scratch.lf_period.clear();
  scratch.lf_weights.clear();
  for (const DynInterferer& i : lf) {
    const Time jj = msg_jitter[i.msg];
    if (is_infinite(jj)) return out;
    if (i.weight <= 0) continue;  // single-minislot frames never exceed the baseline
    scratch.lf_jitter.push_back(jj);
    scratch.lf_period.push_back(i.period);
    scratch.lf_weights.push_back(i.weight);
  }

  const std::size_t n_hp_set = scratch.hp_jitter.size();
  const std::size_t n_lf_set = scratch.lf_jitter.size();
  const std::int64_t need = in.p_latest - in.fid + 1;  // >= 1 here

  std::int64_t fixed_cycles = 0;
  scratch.lf_counts.assign(n_lf_set, 0);

  const auto body = [&](Time t) -> Time {
    std::int64_t n_hp = 0;
    for (std::size_t j = 0; j < n_hp_set; ++j) {
      n_hp += ceil_div(t + scratch.hp_jitter[j], scratch.hp_period[j]);
    }
    std::int64_t excess = 0;
    for (std::size_t j = 0; j < n_lf_set; ++j) {
      scratch.lf_counts[j] = ceil_div(t + scratch.lf_jitter[j], scratch.lf_period[j]);
      excess += scratch.lf_counts[j] * scratch.lf_weights[j];
    }

    const std::int64_t lf_fill =
        bound == DynCyclesBound::MultiplicityCapped
            ? multiplicity_capped_fill(scratch.lf_counts, scratch.lf_weights, need)
            : excess / need;
    const std::int64_t filled = n_hp + lf_fill;
    const std::int64_t leftover = std::min<std::int64_t>(
        need - 1, std::max<std::int64_t>(0, excess - lf_fill * need));
    fixed_cycles = filled;

    // Final-cycle delay from the cycle start to the start of m's frame:
    // the ST segment, the baseline minislots of the f-1 lower slots, and
    // whatever excess remains without filling the cycle.
    const Time w_last = in.st_segment_len +
                        (static_cast<Time>(in.fid - 1) + static_cast<Time>(std::min(
                                                             leftover, need - 1))) *
                            in.minislot;
    return sat_add(in.sigma, sat_add(sat_mul(in.cycle, filled), w_last));
  };

  const FixedPointResult fp = iterate_to_fixed_point(body, horizon);
  if (fp_iterations != nullptr) *fp_iterations += fp.iterations;
  if (!fp.converged) return out;
  out.converged = true;
  out.w = fp.value;
  out.bus_cycles = fixed_cycles;
  // C_m rounded up to the frame's minislot footprint: delivery happens at
  // the end of the last occupied minislot.
  out.response = sat_add(own_jitter, sat_add(fp.value, in.occupancy));
  return out;
}

DynResponse dyn_response_time(const BusLayout& layout, MessageId m,
                              std::span<const Time> jitters, Time horizon,
                              DynCyclesBound bound, int* fp_iterations) {
  const Application& app = layout.application();
  const Message& msg = app.message(m);
  const NodeId sender_node = app.task(msg.sender).node;

  DynPrepared in;
  in.fid = layout.frame_id(m);
  in.p_latest = layout.p_latest_tx(sender_node);
  in.cycle = layout.cycle_len();
  in.minislot = layout.params().gd_minislot;
  in.st_segment_len = layout.st_segment_len();
  in.sigma = dyn_sigma(layout, m);
  in.occupancy = layout.message_occupancy(m);

  std::vector<DynInterferer> hp;
  for (const MessageId j : layout.hp(m)) {
    hp.push_back({static_cast<std::uint32_t>(index_of(j)),
                  app.period_of(ActivityRef::message(j)), 1});
  }
  std::vector<DynInterferer> lf;
  for (const MessageId j : layout.lf(m)) {
    lf.push_back({static_cast<std::uint32_t>(index_of(j)),
                  app.period_of(ActivityRef::message(j)), layout.message_minislots(j) - 1});
  }

  DynScratch scratch;
  return dyn_response_time_prepared(in, hp, lf, jitters, jitters[index_of(m)], horizon, bound,
                                    scratch, fp_iterations);
}

}  // namespace flexopt
