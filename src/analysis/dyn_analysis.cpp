#include "flexopt/analysis/dyn_analysis.hpp"

#include <algorithm>
#include <vector>

#include "flexopt/analysis/sat_time.hpp"
#include "flexopt/math/fixed_point.hpp"

namespace flexopt {

Time dyn_sigma(const BusLayout& layout, MessageId m) {
  const int fid = layout.frame_id(m);
  const Time earliest_slot_pass =
      layout.st_segment_len() + static_cast<Time>(fid - 1) * layout.params().gd_minislot;
  return layout.cycle_len() - earliest_slot_pass;
}

namespace {

/// Largest k such that k cycles can each collect `need` excess minislots
/// when message j supplies at most min(n_j, k) instances of weight w_j
/// (at most one transmission per FrameID slot per cycle).  Monotone in k,
/// so binary search applies; k is bounded by floor(total / need).
std::int64_t multiplicity_capped_fill(std::span<const std::int64_t> counts,
                                      std::span<const std::int64_t> weights,
                                      std::int64_t need) {
  std::int64_t total = 0;
  for (std::size_t j = 0; j < counts.size(); ++j) total += counts[j] * weights[j];
  std::int64_t lo = 0;
  std::int64_t hi = total / need;
  while (lo < hi) {
    const std::int64_t k = lo + (hi - lo + 1) / 2;
    std::int64_t usable = 0;
    for (std::size_t j = 0; j < counts.size(); ++j) {
      usable += weights[j] * std::min(counts[j], k);
    }
    if (usable >= k * need) {
      lo = k;
    } else {
      hi = k - 1;
    }
  }
  return lo;
}

}  // namespace

DynResponse dyn_response_time(const BusLayout& layout, MessageId m,
                              std::span<const Time> jitters, Time horizon,
                              DynCyclesBound bound) {
  DynResponse out;
  const Application& app = layout.application();
  const Message& msg = app.message(m);
  const int fid = layout.frame_id(m);
  const NodeId sender_node = app.task(msg.sender).node;
  const int p_latest = layout.p_latest_tx(sender_node);

  // With all lower slots empty the counter reads `fid` at m's slot; if that
  // already exceeds pLatestTx the message can never be transmitted.
  if (fid > p_latest) return out;
  out.transmittable = true;

  const Time own_jitter = jitters[index_of(m)];
  if (is_infinite(own_jitter)) return out;

  struct Interferer {
    Time jitter;
    Time period;
    std::int64_t weight;  // excess minislots (lf) or 1 (hp cycle fill)
  };
  std::vector<Interferer> hp_set;
  std::vector<Interferer> lf_set;
  for (const MessageId j : layout.hp(m)) {
    const Time jj = jitters[index_of(j)];
    if (is_infinite(jj)) return out;  // unbounded interference
    hp_set.push_back({jj, app.period_of(ActivityRef::message(j)), 1});
  }
  for (const MessageId j : layout.lf(m)) {
    const Time jj = jitters[index_of(j)];
    if (is_infinite(jj)) return out;
    const std::int64_t excess = layout.message_minislots(j) - 1;
    if (excess <= 0) continue;  // single-minislot frames never exceed the baseline
    lf_set.push_back({jj, app.period_of(ActivityRef::message(j)), excess});
  }

  const Time cycle = layout.cycle_len();
  const Time minislot = layout.params().gd_minislot;
  const Time sigma = dyn_sigma(layout, m);
  const std::int64_t need = p_latest - fid + 1;  // >= 1 here

  std::int64_t fixed_cycles = 0;
  std::vector<std::int64_t> lf_counts(lf_set.size());
  std::vector<std::int64_t> lf_weights(lf_set.size());
  for (std::size_t j = 0; j < lf_set.size(); ++j) lf_weights[j] = lf_set[j].weight;

  const auto body = [&](Time t) -> Time {
    std::int64_t n_hp = 0;
    for (const Interferer& i : hp_set) n_hp += ceil_div(t + i.jitter, i.period);
    std::int64_t excess = 0;
    for (std::size_t j = 0; j < lf_set.size(); ++j) {
      lf_counts[j] = ceil_div(t + lf_set[j].jitter, lf_set[j].period);
      excess += lf_counts[j] * lf_set[j].weight;
    }

    const std::int64_t lf_fill =
        bound == DynCyclesBound::MultiplicityCapped
            ? multiplicity_capped_fill(lf_counts, lf_weights, need)
            : excess / need;
    const std::int64_t filled = n_hp + lf_fill;
    const std::int64_t leftover = std::min<std::int64_t>(
        need - 1, std::max<std::int64_t>(0, excess - lf_fill * need));
    fixed_cycles = filled;

    // Final-cycle delay from the cycle start to the start of m's frame:
    // the ST segment, the baseline minislots of the f-1 lower slots, and
    // whatever excess remains without filling the cycle.
    const Time w_last = layout.st_segment_len() +
                        (static_cast<Time>(fid - 1) + static_cast<Time>(std::min(
                                                          leftover, need - 1))) *
                            minislot;
    return sat_add(sigma, sat_add(sat_mul(cycle, filled), w_last));
  };

  const FixedPointResult fp = iterate_to_fixed_point(body, horizon);
  if (!fp.converged) return out;
  out.converged = true;
  out.w = fp.value;
  out.bus_cycles = fixed_cycles;
  // C_m rounded up to the frame's minislot footprint: delivery happens at
  // the end of the last occupied minislot.
  out.response = sat_add(own_jitter, sat_add(fp.value, layout.message_occupancy(m)));
  return out;
}

}  // namespace flexopt
