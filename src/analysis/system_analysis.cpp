#include "flexopt/analysis/system_analysis.hpp"

#include "flexopt/flexray/bus_layout.hpp"

#include <algorithm>

#include "flexopt/analysis/dyn_analysis.hpp"
#include "flexopt/analysis/exact/exact_analysis.hpp"
#include "flexopt/analysis/fps_analysis.hpp"
#include "flexopt/analysis/sat_time.hpp"
#include "flexopt/util/log.hpp"

namespace flexopt {

Expected<Time> analysis_horizon(const Application& app, const AnalysisOptions& options) {
  const auto hp_result = app.hyperperiod();
  if (!hp_result.ok()) return hp_result.error();
  const Time H = hp_result.value();

  Time max_deadline = 0;
  for (const auto& g : app.graphs()) max_deadline = std::max(max_deadline, g.deadline);
  for (std::uint32_t t = 0; t < app.task_count(); ++t) {
    max_deadline = std::max(max_deadline,
                            app.effective_deadline(ActivityRef::task(static_cast<TaskId>(t))));
  }
  return std::max(H, max_deadline) * options.horizon_factor;
}

Expected<AnalysisResult> analyze_system(const BusLayout& layout, const AnalysisOptions& options,
                                        AnalysisWorkCounters* counters,
                                        std::span<const Time> external_task_jitter,
                                        std::span<const Time> dyn_message_caps) {
  // Exact mode dispatches to the schedule-space backend, which re-enters
  // this function twice with mode == Holistic (once uncapped, once with the
  // explored caps) — the caps.empty() guard keeps that re-entry direct.
  if (options.mode == AnalysisMode::Exact && dyn_message_caps.empty()) {
    return analyze_system_exact(layout, options, counters, external_task_jitter);
  }
  const Application& app = layout.application();
  const auto horizon_result = analysis_horizon(app, options);
  if (!horizon_result.ok()) return horizon_result.error();
  const Time horizon = horizon_result.value();

  if (counters != nullptr) ++counters->schedule_builds;
  auto schedule_result = build_static_schedule(layout, options.scheduler);
  if (!schedule_result.ok()) return schedule_result.error();

  AnalysisResult result;
  result.schedule_ptr = std::make_shared<const StaticSchedule>(std::move(schedule_result).value());
  const StaticSchedule& schedule = *result.schedule_ptr;
  // ET completions start at 0: the holistic iteration is monotone from
  // below and converges to the least fixed point.  Seeding with infinity
  // would create self-sustaining "mutually unbounded" groups whenever a
  // message is interfered by its own downstream successors (lower
  // FrameIDs), which is the common case under criticality-ordered IDs.
  result.task_completion.assign(app.task_count(), 0);
  result.message_completion.assign(app.message_count(), 0);
  result.task_jitter.assign(app.task_count(), 0);
  result.message_jitter.assign(app.message_count(), 0);

  // TT activities: completions come straight from the table and never move.
  for (std::uint32_t t = 0; t < app.task_count(); ++t) {
    if (app.tasks()[t].policy == TaskPolicy::Scs) {
      result.task_completion[t] = schedule.task_wcrt(static_cast<TaskId>(t));
    }
  }
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    if (app.messages()[m].cls == MessageClass::Static) {
      result.message_completion[m] = schedule.message_wcrt(static_cast<MessageId>(m));
    }
  }

  auto completion_of = [&](ActivityRef a) {
    return a.is_task() ? result.task_completion[a.index] : result.message_completion[a.index];
  };

  // FPS task parameter sets per node, updated each iteration with fresh
  // jitters.
  std::vector<std::vector<FpsTaskParams>> fps_on_node(app.node_count());
  for (std::uint32_t t = 0; t < app.task_count(); ++t) {
    const Task& task = app.tasks()[t];
    if (task.policy != TaskPolicy::Fps) continue;
    fps_on_node[index_of(task.node)].push_back(FpsTaskParams{
        static_cast<TaskId>(t), task.wcet, app.graph(task.graph).period, 0, task.priority});
  }

  // Holistic fixed point: jitters derive from predecessor completions,
  // response times from jitters.  Completions grow monotonically, so the
  // loop either stabilises or some completion crosses the horizon (then it
  // is pinned to infinity and the loop stabilises anyway).
  bool converged = false;
  int fp_iterations = 0;
  int* const fp_out = counters != nullptr ? &fp_iterations : nullptr;
  for (int iter = 0; iter < options.max_holistic_iterations && !converged; ++iter) {
    if (counters != nullptr) ++counters->holistic_iterations;
    bool changed = false;

    // 1. Jitters of ET activities from predecessor completions.
    for (const ActivityRef a : app.topological_order()) {
      const bool is_et = a.is_task() ? app.task(a.as_task()).policy == TaskPolicy::Fps
                                     : app.message(a.as_message()).cls == MessageClass::Dynamic;
      if (!is_et) continue;
      Time jitter = a.is_task() ? app.task(a.as_task()).release_offset : 0;
      if (a.is_task() && a.index < external_task_jitter.size()) {
        const Time ext = external_task_jitter[a.index];
        jitter = is_infinite(ext) || is_infinite(jitter) ? kTimeInfinity : std::max(jitter, ext);
      }
      for (const ActivityRef p : app.predecessors(a)) {
        const Time pc = completion_of(p);
        jitter = is_infinite(pc) || is_infinite(jitter) ? kTimeInfinity : std::max(jitter, pc);
      }
      auto& slot = a.is_task() ? result.task_jitter[a.index] : result.message_jitter[a.index];
      if (slot != jitter) {
        slot = jitter;
        changed = true;
      }
    }

    // 2. FPS task response times per node.
    for (std::size_t n = 0; n < app.node_count(); ++n) {
      auto& params = fps_on_node[n];
      for (auto& p : params) p.jitter = result.task_jitter[index_of(p.id)];
      const BusyProfile& profile = schedule.node_profile(n);
      for (const auto& p : params) {
        if (counters != nullptr) ++counters->fps_analyses;
        const Time r = fps_response_time(p, params, profile, horizon, fp_out);
        if (result.task_completion[index_of(p.id)] != r) {
          result.task_completion[index_of(p.id)] = r;
          changed = true;
        }
      }
    }

    // 3. DYN message response times on the bus.
    for (std::uint32_t m = 0; m < app.message_count(); ++m) {
      if (app.messages()[m].cls != MessageClass::Dynamic) continue;
      if (counters != nullptr) ++counters->dyn_analyses;
      const DynResponse r = dyn_response_time(layout, static_cast<MessageId>(m),
                                              result.message_jitter, horizon,
                                              options.dyn_bound, fp_out);
      Time response = r.response;
      if (m < dyn_message_caps.size()) response = std::min(response, dyn_message_caps[m]);
      if (result.message_completion[m] != response) {
        result.message_completion[m] = response;
        changed = true;
      }
    }

    if (options.debug_trace) {
      Time max_finite = 0;
      int infinite = 0;
      auto scan = [&](const std::vector<Time>& v) {
        for (const Time c : v) {
          if (is_infinite(c)) {
            ++infinite;
          } else {
            max_finite = std::max(max_finite, c);
          }
        }
      };
      scan(result.task_completion);
      scan(result.message_completion);
      log_debug("holistic iter ", iter, ": changed=", changed,
                " max_finite=", format_time(max_finite), " infinite=", infinite);
    }
    converged = !changed;
  }

  result.converged = converged;
  if (counters != nullptr) {
    counters->fixed_point_iterations += static_cast<std::uint64_t>(fp_iterations);
  }
  if (!converged) {
    // The completions are monotone non-decreasing across iterations, so a
    // non-stabilised value is not a safe upper bound: pin every ET
    // completion to "unbounded" rather than report an optimistic number.
    for (std::uint32_t t = 0; t < app.task_count(); ++t) {
      if (app.tasks()[t].policy == TaskPolicy::Fps) result.task_completion[t] = kTimeInfinity;
    }
    for (std::uint32_t m = 0; m < app.message_count(); ++m) {
      if (app.messages()[m].cls == MessageClass::Dynamic) {
        result.message_completion[m] = kTimeInfinity;
      }
    }
  }

  result.cost = evaluate_cost(app, result.task_completion, result.message_completion);
  return result;
}

}  // namespace flexopt
