#include "flexopt/analysis/cost.hpp"

#include <algorithm>

#include "flexopt/analysis/sat_time.hpp"

namespace flexopt {

void CostAccumulator::add(const Application& app, std::span<const Time> task_completions,
                          std::span<const Time> message_completions) {
  auto account = [&](ActivityRef a, Time completion) {
    const Time deadline = app.effective_deadline(a);
    if (is_infinite(completion)) {
      ++unbounded_activities;
      overshoot_us += to_us(deadline) * kUnboundedPenaltyFactor;
      return;
    }
    const Time slack = completion - deadline;
    if (slack > 0) overshoot_us += to_us(slack);
    laxity_us += to_us(slack);
  };

  for (std::uint32_t t = 0; t < app.task_count(); ++t) {
    account(ActivityRef::task(static_cast<TaskId>(t)), task_completions[t]);
  }
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    account(ActivityRef::message(static_cast<MessageId>(m)), message_completions[m]);
  }
}

Cost CostAccumulator::finish() const {
  Cost cost;
  cost.unbounded_activities = unbounded_activities;
  if (overshoot_us > 0.0 || unbounded_activities > 0) {
    cost.value = overshoot_us;
    cost.schedulable = false;
  } else {
    cost.value = laxity_us;
    cost.schedulable = true;
  }
  return cost;
}

Cost evaluate_cost(const Application& app, std::span<const Time> task_completions,
                   std::span<const Time> message_completions) {
  CostAccumulator acc;
  acc.add(app, task_completions, message_completions);
  return acc.finish();
}

}  // namespace flexopt
