#include "flexopt/analysis/busy_profile.hpp"

#include <algorithm>
#include <cassert>

namespace flexopt {

std::vector<Interval> normalize_intervals(std::vector<Interval> intervals) {
  std::erase_if(intervals, [](const Interval& iv) { return iv.length() <= 0; });
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.start < b.start; });
  std::vector<Interval> merged;
  for (const Interval& iv : intervals) {
    if (!merged.empty() && iv.start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

BusyProfile::BusyProfile(std::vector<Interval> intervals, Time period) : period_(period) {
  assert(period > 0);
  for (Interval& iv : intervals) {
    iv.start = std::clamp<Time>(iv.start, 0, period);
    iv.end = std::clamp<Time>(iv.end, 0, period);
  }
  intervals_ = normalize_intervals(std::move(intervals));
  rebuild_derived();
}

void BusyProfile::assign_normalized(std::span<const Interval> merged, Time period) {
  assert(period > 0);
#ifndef NDEBUG
  for (std::size_t i = 0; i < merged.size(); ++i) {
    assert(merged[i].start >= 0 && merged[i].end <= period && merged[i].length() > 0);
    // Strictly separated: normalize_intervals merges adjacency too.
    assert(i == 0 || merged[i].start > merged[i - 1].end);
  }
#endif
  period_ = period;
  intervals_.assign(merged.begin(), merged.end());
  rebuild_derived();
}

void BusyProfile::rebuild_derived() {
  prefix_at_start_.clear();
  prefix_at_start_.reserve(intervals_.size());
  Time acc = 0;
  for (const Interval& iv : intervals_) {
    prefix_at_start_.push_back(acc);
    acc += iv.length();
  }
  total_busy_ = acc;

  // Largest idle gap, accounting for the wrap from the last interval to the
  // first interval of the next period.
  if (intervals_.empty()) {
    largest_gap_ = period_;
  } else {
    largest_gap_ = 0;
    for (std::size_t i = 0; i + 1 < intervals_.size(); ++i) {
      largest_gap_ = std::max(largest_gap_, intervals_[i + 1].start - intervals_[i].end);
    }
    largest_gap_ = std::max(largest_gap_,
                            period_ - intervals_.back().end + intervals_.front().start);
  }
}

Time BusyProfile::prefix(Time t) const {
  assert(t >= 0 && t <= period_);
  // Find last interval starting before t.
  const auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](Time value, const Interval& iv) { return value < iv.start; });
  if (it == intervals_.begin()) return 0;
  const std::size_t i = static_cast<std::size_t>(it - intervals_.begin()) - 1;
  return prefix_at_start_[i] + std::min(t, intervals_[i].end) - intervals_[i].start;
}

Time BusyProfile::busy_between(Time from, Time to) const {
  assert(from >= 0 && to >= from);
  const std::int64_t from_period = from / period_;
  const std::int64_t to_period = to / period_;
  const Time from_local = from % period_;
  const Time to_local = to % period_;
  if (from_period == to_period) return prefix(to_local) - prefix(from_local);
  const std::int64_t full_periods = to_period - from_period - 1;
  return (total_busy_ - prefix(from_local)) + full_periods * total_busy_ + prefix(to_local);
}

Time BusyProfile::max_busy_in_window(Time w) const {
  if (w <= 0 || intervals_.empty()) return 0;
  // Inlined busy_between(iv.start, iv.start + w): the window always starts
  // at an interval start, whose prefix is prefix_at_start_[i] — no lookup —
  // so only the window end needs a binary search.  This is the innermost
  // loop of the FPS fixed point; halving the upper_bound count matters.
  Time best = 0;
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    const Time to = intervals_[i].start + w;
    const std::int64_t to_period = to / period_;
    const Time to_local = to % period_;
    const Time busy =
        to_period == 0
            ? prefix(to_local) - prefix_at_start_[i]
            : (total_busy_ - prefix_at_start_[i]) + (to_period - 1) * total_busy_ +
                  prefix(to_local);
    best = std::max(best, busy);
  }
  return best;
}

Time BusyProfile::earliest_gap(Time from, Time len) const {
  assert(from >= 0 && len >= 0);
  if (len == 0) return from;
  if (len > largest_gap_) return kTimeInfinity;
  if (intervals_.empty()) return from;

  Time t = from;
  // At most two periods of scanning are needed: a gap of length <= largest
  // gap exists in every period, so the first fit lies within [from, from +
  // 2 * period].
  const Time limit = from + 2 * period_ + len;
  while (t <= limit) {
    const Time local = t % period_;
    const std::int64_t base = (t / period_) * period_;
    // First interval that ends after `local`: the interval that could block
    // a window starting at `local`.
    const auto it = std::upper_bound(
        intervals_.begin(), intervals_.end(), local,
        [](Time value, const Interval& iv) { return value < iv.end; });
    if (it == intervals_.end()) {
      // Idle until the end of this period; the window may spill into the
      // next period only if the next period starts idle long enough.
      const Time tail = period_ - local;
      if (tail >= len) return t;
      const Time head_needed = len - tail;
      const Time next_start = intervals_.front().start;
      if (next_start >= head_needed) return t;
      t = base + period_;  // retry at next period boundary
      continue;
    }
    if (local + len <= it->start) return t;  // fits before the blocking interval
    if (local < it->end && local >= it->start) {
      t = base + it->end;  // inside a busy interval: jump to its end
    } else {
      t = base + it->end;  // gap too small: jump past the blocking interval
    }
  }
  return kTimeInfinity;
}

}  // namespace flexopt
