#pragma once

/// \file list_scheduler.hpp
/// The global static scheduling algorithm of Fig. 2: list scheduling of SCS
/// tasks and ST messages over one hyper-period, driven by a modified
/// critical-path priority, with SCS placement chosen to minimise the impact
/// on FPS schedulability (line 11).

#include <cstdint>

#include "flexopt/analysis/static_schedule.hpp"
#include "flexopt/util/expected.hpp"

namespace flexopt {

class BusLayout;  // flexopt/flexray/bus_layout.hpp (kept out of cluster-generic includes)

/// How `schedule_TT_task` (Fig. 2, line 11) picks among feasible gaps.
enum class Placement {
  /// First idle gap after ASAP — fast, used inside hot optimisation loops.
  Asap,
  /// Evaluate up to `placement_candidates` gaps and keep the one giving the
  /// smallest sum of FPS response times on that node (the paper's intent;
  /// the exact method of [13] re-analyses the whole system per candidate).
  MinimizeFpsImpact,
};

struct SchedulerOptions {
  Placement placement = Placement::MinimizeFpsImpact;
  /// Gap candidates evaluated per SCS task when minimising FPS impact.
  int placement_candidates = 4;
  /// Give up locating an ST slot for a message beyond this many bus cycles
  /// after its ready time (guards against unbounded searches when slots are
  /// hopelessly oversubscribed); the schedule is then reported infeasible.
  std::int64_t max_slot_search_cycles = 4096;
};

/// Builds the static schedule table for all SCS tasks and ST messages.
/// Fails when precedence cannot be satisfied (should not happen for a
/// finalized application) or when an ST message cannot be placed within the
/// search bound.
Expected<StaticSchedule> build_static_schedule(const BusLayout& layout,
                                               const SchedulerOptions& options = {});

}  // namespace flexopt
