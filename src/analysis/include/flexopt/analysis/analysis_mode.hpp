#pragma once

/// \file analysis_mode.hpp
/// The analysis-backend vocabulary shared by analyze_system,
/// analyze_multicluster, CostEvaluator, and the campaign runner: which
/// backend computes the ET (DYN-segment) worst-case response times, the
/// knobs of the exact schedule-space exploration, and the per-cluster
/// record of what the exact backend actually did (refinement statistics
/// plus the holistic reference bounds the pessimism report is computed
/// against).

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "flexopt/util/expected.hpp"
#include "flexopt/util/time.hpp"

namespace flexopt {

/// Which backend produces the ET response-time bounds of an analysis run.
///
///  * Holistic — the paper's fixed-point bound (safe, pessimistic).
///  * Exact — schedule-space exploration of the DYN arbitration refines the
///    holistic bound per FlexRay cluster; the result is clamped to the
///    holistic bound, so exact <= holistic activity-wise by construction.
///  * Simulate — analysis-wise identical to Holistic; the campaign runner
///    additionally replays every winner on the network simulator (the
///    sim_check lane) so the three-way holistic/exact/observed comparison
///    can be driven from one spec axis.
enum class AnalysisMode { Holistic, Exact, Simulate };

[[nodiscard]] const char* to_string(AnalysisMode mode);
[[nodiscard]] Expected<AnalysisMode> parse_analysis_mode(std::string_view text);

/// Knobs of the exact DYN schedule-space exploration.
struct ExactOptions {
  /// Exploration budget: total states expanded per cluster before the
  /// backend gives up and falls back to the holistic bound
  /// (ExactFallback::BudgetExceeded — recorded, never silent).
  std::uint64_t max_states = 1u << 16;
  /// Upper bound on the per-cycle "maybe ready" set: each maybe message
  /// doubles the branching factor of a cycle step, so a set larger than
  /// this triggers the budget fallback instead of 2^k successor blow-up.
  int max_branch_messages = 12;
  /// Pairwise dominance merging: a frontier state whose per-message
  /// transmitted counts are pointwise >= another's is dropped — the less
  /// progressed state carries at least as much backlog into every future
  /// cycle, so its reachable finish times cover the dropped state's.
  bool prune_dominated = true;
  /// Frontier size above which the O(n^2) dominance sweep is skipped for
  /// that cycle (identical-state merging still applies).
  std::size_t dominance_sweep_limit = 256;
  /// Job-release window of the exploration in hyper-periods.  All jobs
  /// released in [0, H * hyperperiods) are explored to completion (plus
  /// drain cycles up to the analysis horizon).
  int hyperperiods = 1;
  /// Worker threads for the sharded frontier exploration.  1 explores
  /// inline on the calling thread; 0 uses the hardware concurrency.  The
  /// exploration result is bit-identical for every worker count: states are
  /// routed to a fixed number of shards by key hash (independent of jobs),
  /// each shard merges and prunes locally in sorted key order, and all
  /// counters are order-independent sums.
  int jobs = 1;
  /// Reuse explored per-cluster schedule spaces across neighbour moves:
  /// when an AnalysisComponentCache is available, exploration results are
  /// keyed by the cluster's DYN-geometry sub-hash plus the converged release
  /// jitters, horizon and exploration knobs, so a move that leaves a
  /// cluster's DYN inputs untouched replays the surviving frontier verbatim
  /// instead of re-exploring from the empty state.  A hit is bit-identical
  /// to a cold run (the exploration is a pure function of the key).
  bool reuse_base_frontier = true;

  friend bool operator==(const ExactOptions&, const ExactOptions&) = default;

  /// The fields that determine the exploration *result* (bounds and
  /// counters).  `jobs` and `reuse_base_frontier` are execution knobs with
  /// bit-identical outcomes, so cache keys must ignore them.
  [[nodiscard]] bool same_semantics(const ExactOptions& other) const {
    return max_states == other.max_states &&
           max_branch_messages == other.max_branch_messages &&
           prune_dominated == other.prune_dominated &&
           dominance_sweep_limit == other.dominance_sweep_limit &&
           hyperperiods == other.hyperperiods;
  }
};

/// Why a cluster kept its holistic bounds instead of exact refinements.
enum class ExactFallback {
  None,                ///< exploration ran and refined the cluster
  UnsupportedBackend,  ///< non-FlexRay cluster (TSN has no exact backend yet)
  NoDynMessages,       ///< nothing to refine: no DYN traffic on the bus
  NotConverged,        ///< holistic prerequisite diverged; no jitter bounds
  UnboundedJitter,     ///< some DYN release jitter is infinite
  BudgetExceeded,      ///< max_states / max_branch_messages hit mid-exploration
  InvalidOptions,      ///< zero max_states / max_branch_messages budget
};

[[nodiscard]] const char* to_string(ExactFallback fallback);

/// What the exact backend did for one cluster, attached to that cluster's
/// AnalysisResult (AnalysisResult::exact).  Also carries the holistic
/// completion bounds the exploration refined, so a pessimism report can be
/// derived from the exact result alone without re-running analysis.
struct ExactClusterInfo {
  ExactFallback fallback = ExactFallback::None;
  /// States expanded (frontier sizes summed over cycles).
  std::uint64_t explored_states = 0;
  /// States merged away (identical-key dedup + dominance pruning).
  std::uint64_t merged_states = 0;
  /// Cycle-step successors generated (incl. readiness/tie branches).
  std::uint64_t transitions = 0;
  /// DYN messages whose exact bound is strictly below the holistic one.
  std::size_t refined_messages = 0;
  /// Holistic reference bounds (graph-relative, kTimeInfinity = unbounded),
  /// indexed like the owning AnalysisResult's completion vectors.
  std::vector<Time> holistic_task_completion;
  std::vector<Time> holistic_message_completion;
};

}  // namespace flexopt
