#pragma once

/// \file static_schedule.hpp
/// The static schedule table produced by the list scheduler (Fig. 2 of the
/// paper): start times for every SCS task instance within one hyper-period
/// and (cycle, slot) placements for every ST message instance.

#include <vector>

#include "flexopt/analysis/busy_profile.hpp"
#include "flexopt/model/ids.hpp"
#include "flexopt/util/time.hpp"

namespace flexopt {

struct ScheduledTask {
  TaskId task{};
  /// Instance number within the hyper-period (release = instance * period).
  int instance = 0;
  Time release = 0;
  Time start = 0;
  Time finish = 0;
};

struct ScheduledMessage {
  MessageId message{};
  int instance = 0;
  Time release = 0;  ///< sender-graph release of this instance
  /// Bus cycle index (0-based, unbounded) and ST slot index (0-based).
  std::int64_t cycle = 0;
  int slot = 0;
  /// Absolute transmission window on the bus.
  Time start = 0;
  Time finish = 0;
};

/// Immutable result of static scheduling.  Indexed lookups are by the dense
/// task/message ids of the Application.
class StaticSchedule {
 public:
  StaticSchedule(Time hyperperiod, std::size_t node_count, std::size_t task_count,
                 std::size_t message_count);

  void add_task_entry(ScheduledTask entry, std::size_t node_index);
  void add_message_entry(ScheduledMessage entry);

  [[nodiscard]] Time hyperperiod() const { return hyperperiod_; }
  [[nodiscard]] const std::vector<ScheduledTask>& task_entries(TaskId t) const {
    return per_task_[index_of(t)];
  }
  [[nodiscard]] const std::vector<ScheduledMessage>& message_entries(MessageId m) const {
    return per_message_[index_of(m)];
  }
  /// All SCS entries on one node, in start order (sorted by finalize()).
  [[nodiscard]] const std::vector<ScheduledTask>& node_entries(std::size_t node_index) const {
    return per_node_[node_index];
  }

  /// Worst-case response time of an SCS task over its instances
  /// (max finish - release); kTimeInfinity if it has no entries.
  [[nodiscard]] Time task_wcrt(TaskId t) const;
  /// Worst-case response time of an ST message over its instances.
  [[nodiscard]] Time message_wcrt(MessageId m) const;

  /// CPU-busy profile of a node (period = hyper-period), for FPS analysis.
  /// Valid after finalize().
  [[nodiscard]] const BusyProfile& node_profile(std::size_t node_index) const {
    return profiles_[node_index];
  }

  /// Sorts per-node entries and builds the busy profiles.
  void finalize();

 private:
  Time hyperperiod_;
  std::vector<std::vector<ScheduledTask>> per_task_;
  std::vector<std::vector<ScheduledMessage>> per_message_;
  std::vector<std::vector<ScheduledTask>> per_node_;
  std::vector<BusyProfile> profiles_;
};

}  // namespace flexopt
