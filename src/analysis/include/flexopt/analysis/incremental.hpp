#pragma once

/// \file incremental.hpp
/// Incremental ("delta") system analysis: splits analyze_system into
/// separately cacheable components keyed by sub-hashes of the BusConfig
/// decision variables, so a neighbour move recomputes only what it
/// invalidated.  Three component classes exist:
///
///  * the static-segment schedule table (+ the TT completions it fixes),
///    keyed by the schedule's inputs: ST slot count / length / ownership
///    and the DYN segment length (the cycle length shifts every later bus
///    cycle of the table);
///  * the DYN response-time recurrences, whose non-jitter inputs are the
///    segment geometry (ST length, cycle length, pLatestTx) and the
///    FrameID assignment — ST slot ownership is deliberately absent;
///  * the FPS/task-level structure (FPS task groups per node, response
///    horizon), which depends on the mapping only and is built once per
///    application.
///
/// analyze_system_incremental reuses every component the move left intact
/// and, inside the holistic fixed point, recomputes a response-time
/// recurrence only when one of its inputs actually changed.  The fixed
/// point is run as a chaotic (Gauss-Seidel-style) relaxation — sound
/// because the iteration is monotone from below, so every fair update
/// order reaches the same least fixed point analyze_system's Jacobi
/// schedule reaches — with analyze_system's exact schedule as the
/// fallback whenever the sweep cap is hit (the relaxation dominates the
/// Jacobi sweeps pointwise, so a cap hit here implies the full path would
/// have hit its cap and pinned too).  The result is therefore
/// bit-identical to analyze_system whenever the holistic iteration
/// converges — asserted in Debug builds by CostEvaluator::evaluate_delta
/// and covered by the delta property tests.  The single tolerated
/// asymmetry is a system whose Jacobi schedule would need more than
/// AnalysisOptions::max_holistic_iterations sweeps to converge while the
/// relaxation converges within them: the delta path then returns the
/// exact fixed point the cap would have pinned to all-infinite — a
/// strictly tighter sound bound (never observed in the test populations).

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "flexopt/analysis/arena.hpp"
#include "flexopt/analysis/exact/schedule_space.hpp"
#include "flexopt/analysis/fps_analysis.hpp"
#include "flexopt/analysis/system_analysis.hpp"
#include "flexopt/flexray/bus_config.hpp"

namespace flexopt {

/// Stable sub-hashes of the decision variables, one per component class.
struct ConfigSubHashes {
  /// Inputs of the static-segment schedule (ST knobs + cycle length).
  std::uint64_t geometry_key = 0;
  /// Non-jitter inputs of the DYN response-time analysis (segment
  /// geometry + FrameID assignment; slot ownership excluded).
  std::uint64_t dyn_key = 0;
};

[[nodiscard]] ConfigSubHashes config_subhashes(const BusConfig& config);

/// Which decision variables a neighbour move touched, in analysis terms.
/// Produced from core's DeltaMove; consumed by the seeded fixed point to
/// bound the transitively invalidated component set.
struct AnalysisInvalidation {
  bool st_slot_count_changed = false;
  bool st_slot_len_changed = false;
  bool st_owner_changed = false;
  bool minislot_count_changed = false;
  /// Number of messages whose FrameID changed.  The invalidation closure
  /// only needs the FrameID *window* below, so the struct stays scalar —
  /// producing one per candidate move is allocation-free.
  std::uint32_t changed_message_count = 0;
  /// FrameID window [min, max] spanned by the changed messages' base and
  /// new FrameIDs.  Only DYN messages with a FrameID inside the window can
  /// see a different lf()/hp() interference set: a message above it keeps
  /// every changed message in lf() (both FrameIDs below its own, weights
  /// and periods untouched), one below it never saw them.  [INT_MAX,
  /// INT_MIN] when no FrameID changed.
  int frame_id_window_min = std::numeric_limits<int>::max();
  int frame_id_window_max = std::numeric_limits<int>::min();

  [[nodiscard]] bool any_change() const {
    return st_slot_count_changed || st_slot_len_changed || st_owner_changed ||
           minislot_count_changed || changed_message_count != 0;
  }
  /// The static-segment table must be rebuilt (or fetched by a new key).
  [[nodiscard]] bool schedule_invalidated() const {
    return st_slot_count_changed || st_slot_len_changed || st_owner_changed ||
           minislot_count_changed;
  }
  /// Every DYN recurrence is structurally invalidated (sigma, gdCycle,
  /// pLatestTx or the ST segment length changed).
  [[nodiscard]] bool dyn_geometry_invalidated() const {
    return st_slot_count_changed || st_slot_len_changed || minislot_count_changed;
  }
};

/// Cacheable static-segment component: the schedule table plus the TT
/// completions it fixes.  Construction failures are cached too (negative
/// caching), so a sweep over an unschedulable geometry pays once.
struct ScheduleComponent {
  // Geometry the component was built for — the hash-collision guard.
  int static_slot_count = 0;
  Time static_slot_len = 0;
  std::vector<NodeId> static_slot_owner;
  int minislot_count = 0;

  bool valid = false;
  std::string error;
  /// Immutable table shared into every AnalysisResult that reuses this
  /// component (no deep copy on the delta-evaluation hot path).
  std::shared_ptr<const StaticSchedule> schedule;
  /// Indexed by TaskId / MessageId: table WCRT for TT activities, 0 for ET
  /// (the fixed point's monotone-from-below seed).
  std::vector<Time> tt_task_completion;
  std::vector<Time> tt_message_completion;
};

/// Mapping-level component shared by every configuration of one
/// application, flattened into structure-of-arrays form so the analysis
/// hot path iterates contiguous memory.  Built once per evaluator.
///
/// The "aid" (activity index) space is the dense index the arena state is
/// keyed by: aid = t for task t, aid = n_tasks + m for message m.
struct TaskStructure {
  bool valid = false;
  std::string error;
  Time horizon = 0;
  std::uint32_t n_tasks = 0;
  std::uint32_t n_msgs = 0;
  std::uint32_t n_nodes = 0;
  std::uint32_t n_acts = 0;  ///< n_tasks + n_msgs

  /// FPS task parameter templates, one flat array grouped by node:
  /// node n's group is fps_params[fps_node_begin[n] .. fps_node_begin[n+1]).
  /// (Jitter slots are copied into the arena and refreshed per analysis;
  /// the structure itself is immutable.)
  std::vector<FpsTaskParams> fps_params;
  std::vector<std::uint32_t> fps_node_begin;   ///< size n_nodes + 1
  std::vector<std::int32_t> fps_slot_of_task;  ///< per task; -1 when not FPS

  /// Indices of DYN messages, ascending — the dense DYN index space.
  std::vector<std::uint32_t> dyn_messages;
  std::vector<std::int32_t> dyn_slot_of_msg;  ///< per message; -1 when not DYN
  std::vector<Time> dyn_period;               ///< per dense DYN index
  std::vector<NodeId> dyn_sender_node;        ///< per dense DYN index
  std::vector<std::int32_t> msg_priority;     ///< per message

  /// ET activities (FPS tasks + DYN messages) in topological order, as aids.
  std::vector<std::uint32_t> et_topo;
  /// Graph edges as CSR over the aid space, preserving Application's
  /// adjacency order.
  std::vector<std::uint32_t> pred_begin;  ///< size n_acts + 1
  std::vector<std::uint32_t> pred;
  std::vector<std::uint32_t> succ_begin;  ///< size n_acts + 1
  std::vector<std::uint32_t> succ;
  std::vector<Time> release_offset;     ///< per aid (messages: 0)
  std::vector<std::uint8_t> act_is_et;  ///< per aid (FPS task / DYN message)
  std::vector<std::uint32_t> task_node;  ///< per task
};

/// Cacheable exact-backend component: one cluster's DYN schedule-space
/// exploration outcome, keyed by every input the exploration reads — the
/// dyn sub-hash (segment geometry + FrameID assignment), the converged DYN
/// release jitters, the cycle horizon and the semantic exploration knobs.
/// The exploration is a pure function of that key, so serving a stored
/// component is bit-identical to re-exploring (counters included); this is
/// what makes exact analysis incremental across neighbour moves.
struct ExactSpaceComponent {
  // Exploration inputs — the hash-collision / equality guard.
  std::uint64_t dyn_key = 0;
  Time horizon = 0;
  ExactOptions options;  ///< compared via ExactOptions::same_semantics
  std::vector<Time> message_jitter;

  ScheduleSpaceResult space;
};

/// Thread-safe store of the per-geometry schedule components and the
/// per-mapping task structure.  Owned by CostEvaluator; one cache serves
/// exactly one application.
class AnalysisComponentCache {
 public:
  explicit AnalysisComponentCache(std::size_t max_entries = 4096);

  /// Schedule component for the layout's geometry; built on a miss.
  /// `counters` (optional) records the build or the reuse.
  std::shared_ptr<const ScheduleComponent> schedule_for(const BusLayout& layout,
                                                        const AnalysisOptions& options,
                                                        AnalysisWorkCounters* counters);

  /// Task-level structure of `app`; built on the first call.  Every call
  /// must pass the same application.
  std::shared_ptr<const TaskStructure> task_structure(const Application& app,
                                                      const AnalysisOptions& options);

  /// Exact schedule-space exploration for the layout's DYN inputs under
  /// `message_jitter` (the converged holistic release jitters): explored on
  /// a miss, served verbatim on a hit.  A hit bumps
  /// `counters->exact_frontier_reused`; a miss records the explored/merged
  /// state counts.  Results (including fallbacks) are negatively cached —
  /// the exploration is deterministic, so the first outcome is the outcome.
  std::shared_ptr<const ExactSpaceComponent> schedule_space_for(
      const BusLayout& layout, std::span<const Time> message_jitter, Time horizon,
      const ExactOptions& options, AnalysisWorkCounters* counters);

  void clear();
  [[nodiscard]] std::size_t schedule_entries() const;
  [[nodiscard]] std::size_t exact_space_entries() const;

 private:
  mutable std::mutex mutex_;
  std::size_t max_entries_;
  std::size_t entry_count_ = 0;  ///< total components across all buckets
  std::size_t exact_entry_count_ = 0;
  std::shared_ptr<const TaskStructure> task_structure_;
  /// geometry_key -> components (a bucket list: collisions are resolved by
  /// comparing the stored geometry).
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<const ScheduleComponent>>>
      schedules_;
  /// Combined exploration-input hash -> explored spaces (bucket list,
  /// full-key equality guard).
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<const ExactSpaceComponent>>>
      exact_spaces_;
};

/// Incremental analyze_system.  Without `base`, the result (values,
/// iteration count, convergence) is bit-identical to analyze_system: the
/// ET fixed point merely skips recomputing recurrences whose inputs did
/// not change between iterations.  With `base` and `invalidation` — a
/// *converged* previous result whose configuration differs from `layout`'s
/// exactly by `invalidation` — only the transitively invalidated
/// components are recomputed and everything else is seeded from `base`.
/// Seeding falls back internally to the from-scratch path whenever it
/// cannot be proven safe (non-converged base, iteration cap reached).
/// `external_task_jitter` mirrors analyze_system's parameter (the
/// cross-cluster jitter hook); a non-empty span disables base seeding —
/// a base computed under different external jitter is not a valid seed.
Expected<AnalysisResult> analyze_system_incremental(
    const BusLayout& layout, const AnalysisOptions& options, AnalysisComponentCache& cache,
    AnalysisWorkCounters* counters = nullptr, const AnalysisResult* base = nullptr,
    const AnalysisInvalidation* invalidation = nullptr,
    std::span<const Time> external_task_jitter = {});

/// Arena-based analyze_system_incremental: identical semantics and
/// bit-identical results, but all fixed-point state lives in `arena`
/// (reused across calls) and the outcome is written into `out` (whose
/// vectors are reused too), so a steady-state call performs zero heap
/// allocations.  This is the hot entry CostEvaluator's worker threads
/// drive; the wrapper above allocates a one-shot arena for cold callers.
/// On error, `out` is left unspecified and must not be read.
Expected<bool> analyze_system_incremental_into(
    const BusLayout& layout, const AnalysisOptions& options, AnalysisComponentCache& cache,
    AnalysisArena& arena, AnalysisResult& out, AnalysisWorkCounters* counters = nullptr,
    const AnalysisResult* base = nullptr, const AnalysisInvalidation* invalidation = nullptr,
    std::span<const Time> external_task_jitter = {});

}  // namespace flexopt
