#pragma once

/// \file busy_profile.hpp
/// Periodic CPU-busy profile induced by the static schedule table on one
/// node.  FPS tasks execute only in the slack of this profile (Section 2),
/// so their response-time analysis needs "the maximum SCS busy time inside
/// any window of length w" — `max_busy_in_window`.

#include <span>
#include <vector>

#include "flexopt/util/time.hpp"

namespace flexopt {

/// Half-open busy interval [start, end).
struct Interval {
  Time start = 0;
  Time end = 0;
  [[nodiscard]] Time length() const { return end - start; }
  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Merges overlapping/adjacent intervals and sorts by start.
std::vector<Interval> normalize_intervals(std::vector<Interval> intervals);

/// A set of busy intervals within [0, period), repeating forever with
/// `period`.  Value-semantic: construct once, or re-`assign_normalized`
/// into the same object to reuse its buffers in hot loops.
class BusyProfile {
 public:
  /// Empty profile with period 1; meaningful only as the target of a later
  /// assign_normalized (the list scheduler's per-candidate scratch).
  BusyProfile() = default;

  /// `intervals` may be unsorted/overlapping (they are normalized) but must
  /// lie within [0, period).  Intervals that spill past the period are
  /// clamped (the list scheduler never produces them for feasible systems;
  /// clamping keeps the profile sound for infeasible candidates too).
  BusyProfile(std::vector<Interval> intervals, Time period);

  /// Rebuilds this profile from intervals that are ALREADY clamped to
  /// [0, period], sorted by start, positive-length, and merged (no overlap
  /// or adjacency) — i.e. exactly the output shape of normalize_intervals.
  /// Produces the same profile as the normalizing constructor would for an
  /// equivalent interval set, reusing this object's buffers (no allocation
  /// once capacity is warm).
  void assign_normalized(std::span<const Interval> merged, Time period);

  /// Total busy time within one period.
  [[nodiscard]] Time busy_per_period() const { return total_busy_; }
  [[nodiscard]] Time period() const { return period_; }
  [[nodiscard]] const std::vector<Interval>& intervals() const { return intervals_; }

  /// Busy time inside [from, to) for arbitrary 0 <= from <= to (window may
  /// span many periods).
  [[nodiscard]] Time busy_between(Time from, Time to) const;

  /// Maximum busy time over all windows [x, x+w), x >= 0.  This is the SCS
  /// interference term S(w) in the FPS response-time recurrence.  The
  /// maximum is attained with the window starting at some interval start
  /// (standard sliding-window argument), so only |intervals| candidates are
  /// evaluated.
  [[nodiscard]] Time max_busy_in_window(Time w) const;

  /// Earliest instant t >= from such that [t, t + len) is completely idle
  /// within the periodic profile.  Returns kTimeInfinity if len exceeds the
  /// largest gap (then no such window ever exists).
  [[nodiscard]] Time earliest_gap(Time from, Time len) const;

 private:
  /// Busy time in [0, t) for t in [0, period].
  [[nodiscard]] Time prefix(Time t) const;

  /// Rebuilds prefix_at_start_/total_busy_/largest_gap_ from intervals_.
  void rebuild_derived();

  std::vector<Interval> intervals_;
  std::vector<Time> prefix_at_start_;  // busy in [0, intervals_[i].start)
  Time period_ = 1;
  Time total_busy_ = 0;
  Time largest_gap_ = 0;
};

}  // namespace flexopt
