#pragma once

/// \file arena.hpp
/// Preallocated structure-of-arrays state for the incremental analysis hot
/// path.  One AnalysisArena belongs to one evaluator worker thread and is
/// reused across evaluations: every per-task / per-message quantity the
/// holistic fixed point touches lives in a flat array indexed by the dense
/// activity index (aid = task index for tasks, n_tasks + message index for
/// messages), and re-binding to the same TaskStructure only clears —
/// never reallocates — so a steady-state delta evaluation performs zero
/// heap allocations (asserted by the alloc-probe test and gated by
/// bench_delta_eval).

#include <cstdint>
#include <memory>
#include <vector>

#include "flexopt/analysis/dyn_analysis.hpp"
#include "flexopt/analysis/fps_analysis.hpp"
#include "flexopt/util/bitset.hpp"
#include "flexopt/util/time.hpp"

namespace flexopt {

struct TaskStructure;
class BusLayout;

struct AnalysisArena {
  /// (Re)binds the arena to a task structure.  Binding to the same
  /// structure object again is the steady state: arrays keep their
  /// capacity and only their contents are reset per evaluation.
  void bind(std::shared_ptr<const TaskStructure> s);

  /// Rebuilds the per-evaluation DYN recurrence inputs and the hp/lf
  /// interference CSR from `layout` (FrameIDs and segment geometry are
  /// decision variables, so these change per candidate; the rebuild is
  /// allocation-free at steady state).
  void prepare_dyn_geometry(const BusLayout& layout);

  std::shared_ptr<const TaskStructure> structure;

  // ---- fixed-point state over the aid space --------------------------------
  std::vector<Time> completion;     ///< per aid
  std::vector<Time> jitter;         ///< per aid
  IndexBitset affected;             ///< invalidation closure result, per aid
  IndexBitset dirty;                ///< "a read jitter moved" per component, per aid
  std::vector<std::uint32_t> work;  ///< closure worklist (aids)

  /// Mutable copy of TaskStructure::fps_params (jitter slots are refreshed
  /// in place before each FPS recomputation).
  std::vector<FpsTaskParams> fps_params;

  // ---- per-evaluation DYN recurrence inputs --------------------------------
  std::vector<DynPrepared> dyn_prepared;  ///< per dense DYN index
  std::vector<std::int64_t> dyn_excess;   ///< message_minislots - 1, per dense index
  /// hp(m) / lf(m) as CSR over dense DYN indices.  lf keeps EVERY
  /// lower-FrameID member — zero-excess ones still unbound the recurrence
  /// through an infinite jitter.
  std::vector<std::uint32_t> hp_begin;  ///< size n_dyn + 1
  std::vector<DynInterferer> hp_entries;
  std::vector<std::uint32_t> lf_begin;  ///< size n_dyn + 1
  std::vector<DynInterferer> lf_entries;
  DynScratch scratch;

  // ---- profiling -----------------------------------------------------------
  std::uint64_t binds = 0;   ///< full (re)binds: arrays resized
  std::uint64_t reuses = 0;  ///< steady-state rebinds: capacity reused
};

}  // namespace flexopt
