#pragma once

/// \file cost.hpp
/// The schedulability-degree cost function of Eq. 5:
///
///   Cost = f1 = sum_ij max(R_ij - D_ij, 0)   if f1 > 0   (unschedulable)
///        = f2 = sum_ij (R_ij - D_ij)         if f1 = 0   (schedulable, <= 0)
///
/// R_ij are graph-relative worst-case completion bounds of all activities,
/// D_ij their effective deadlines.  Activities with an unbounded response
/// contribute a finite penalty (a multiple of their deadline) so that
/// optimisers can still rank two infeasible configurations.

#include <span>

#include "flexopt/model/application.hpp"
#include "flexopt/util/time.hpp"

namespace flexopt {

struct Cost {
  /// Cost in microseconds (double so benches can average across systems).
  double value = 0.0;
  bool schedulable = false;
  /// Number of activities whose response bound is unbounded.
  int unbounded_activities = 0;

  friend bool operator<(const Cost& a, const Cost& b) { return a.value < b.value; }
};

/// Deadline-multiple charged for an activity with R = infinity.
inline constexpr int kUnboundedPenaltyFactor = 10;

/// Running Eq. 5 tallies, accumulable across several applications: the
/// multi-cluster analysis sums one accumulation per cluster projection and
/// applies the f1/f2 switch *globally* — a deadline miss in any cluster
/// makes the whole system cost the (system-wide) overshoot sum.
struct CostAccumulator {
  double overshoot_us = 0.0;  ///< f1 accumulator
  double laxity_us = 0.0;     ///< f2 accumulator
  int unbounded_activities = 0;

  /// Accumulates every activity of `app` (same accounting as
  /// evaluate_cost, in the same order).
  void add(const Application& app, std::span<const Time> task_completions,
           std::span<const Time> message_completions);
  [[nodiscard]] Cost finish() const;
};

/// Evaluate Eq. 5.  `task_completions` / `message_completions` are
/// graph-relative worst-case completion bounds indexed by TaskId /
/// MessageId (kTimeInfinity for unbounded).
Cost evaluate_cost(const Application& app, std::span<const Time> task_completions,
                   std::span<const Time> message_completions);

}  // namespace flexopt
