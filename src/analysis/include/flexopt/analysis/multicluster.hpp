#pragma once

/// \file multicluster.hpp
/// End-to-end schedulability analysis of a gateway-connected multi-cluster
/// system: one holistic per-cluster analysis per cluster (FlexRay or TSN,
/// dispatched on the cluster's backend kind), iterated to a cross-cluster
/// fixed point.  The coupling between clusters is
/// gateway forwarding jitter: the release jitter of a forwarding relay task
/// (SystemModel's downstream `.tx` task) is floored at the completion bound
/// of its upstream receive relay, so an inter-cluster message's end-to-end
/// bound is the completion of its final delivery hop.
///
/// Soundness: each per-cluster analysis is monotone in the injected
/// external jitter and the injected jitters are monotone in the per-cluster
/// completions, so the cross iteration is monotone from below — it either
/// stabilises at the least fixed point or crosses the horizon (pinned to
/// infinity).  Hitting `max_cross_iterations` pins every event-triggered
/// activity to infinity, exactly like analyze_system's own iteration cap.
///
/// The degenerate single-cluster case runs exactly one per-cluster analysis
/// with no injected jitter and is bit-identical to analyze_system.

#include <memory>
#include <span>
#include <vector>

#include "flexopt/analysis/cluster_layout.hpp"
#include "flexopt/analysis/incremental.hpp"
#include "flexopt/analysis/system_analysis.hpp"
#include "flexopt/flexray/system_config.hpp"
#include "flexopt/model/system_model.hpp"

namespace flexopt {

struct MulticlusterOptions {
  /// Cross-cluster sweeps before declaring divergence.  Each sweep runs
  /// every cluster's holistic analysis once (Jacobi across clusters, so the
  /// result is independent of cluster order).
  int max_cross_iterations = 16;
};

struct MulticlusterResult {
  /// One holistic result per cluster (indexed by cluster).  Per-cluster
  /// `cost` fields are cluster-local diagnostics; the system-wide Eq. 5
  /// cost below applies the f1/f2 switch globally.
  std::vector<AnalysisResult> clusters;
  Cost cost;
  bool converged = true;
  int cross_iterations = 0;

  [[nodiscard]] bool schedulable() const { return cost.schedulable; }
};

/// Builds one validated ClusterLayout per cluster from the per-cluster
/// projections and decision variables, dispatching on each ClusterConfig's
/// backend kind (which must match the kind the application declares).
/// Fails on the first cluster whose configuration violates its protocol
/// (the error names the cluster).
Expected<std::vector<ClusterLayout>> build_system_layouts(const SystemModel& model,
                                                          const BusParams& params,
                                                          const SystemConfig& config);

/// Runs the cross-cluster fixed point.  `caches` (optional) supplies one
/// AnalysisComponentCache per cluster — static-schedule components are
/// jitter-independent, so every cross iteration after the first reuses all
/// of them; pass an empty span to analyse cache-free.  `counters`
/// accumulates work across every per-cluster analysis of every sweep.
/// `dyn_message_caps` (optional, one vector per cluster; an empty inner
/// vector caps nothing) forwards per-message response caps into each
/// FlexRay cluster's fixed point — the exact backend's re-run hook (see
/// analyze_system).  A cluster with caps bypasses its incremental cache for
/// that call.  When options.mode == AnalysisMode::Exact and no caps are
/// given, the call dispatches to analyze_multicluster_exact.
Expected<MulticlusterResult> analyze_multicluster(
    const SystemModel& model, std::span<const ClusterLayout> layouts,
    const AnalysisOptions& options, const MulticlusterOptions& mc_options = {},
    std::span<AnalysisComponentCache* const> caches = {},
    AnalysisWorkCounters* counters = nullptr,
    std::span<const std::vector<Time>> dyn_message_caps = {});

}  // namespace flexopt
