#pragma once

/// \file exact_analysis.hpp
/// The exact analysis backend behind AnalysisMode::Exact: runs the holistic
/// analysis, explores the DYN schedule space per FlexRay cluster
/// (schedule_space.hpp), and re-runs the holistic fixed point with the
/// explored worst-case finishes as per-message caps.  Folding the caps
/// through the fixed point tightens the jitters of downstream FPS tasks and
/// messages too, so the refinement propagates along the task graphs — and
/// the final bounds are clamped activity-wise to the holistic ones, so
/// exact <= holistic holds by construction.
///
/// Any cluster the exploration cannot refine keeps its holistic bounds and
/// records why (ExactFallback) in the ExactClusterInfo attached to its
/// AnalysisResult — recorded, never silent.

#include <cstdint>
#include <span>
#include <vector>

#include "flexopt/analysis/multicluster.hpp"
#include "flexopt/analysis/system_analysis.hpp"

namespace flexopt {

/// Single-cluster exact analysis (the AnalysisMode::Exact dispatch target
/// of analyze_system).  Always attaches an ExactClusterInfo to the result.
/// With `cache` (and ExactOptions::reuse_base_frontier on), the exploration
/// goes through the cache's exact-space store, making repeated analyses of
/// unchanged DYN inputs incremental — bit-identical to cold runs.
Expected<AnalysisResult> analyze_system_exact(const BusLayout& layout,
                                              const AnalysisOptions& options = {},
                                              AnalysisWorkCounters* counters = nullptr,
                                              std::span<const Time> external_task_jitter = {},
                                              AnalysisComponentCache* cache = nullptr);

/// Multi-cluster exact analysis (the AnalysisMode::Exact dispatch target of
/// analyze_multicluster): holistic cross-cluster fixed point, one
/// exploration per FlexRay cluster, then one capped cross-cluster re-run.
/// Every cluster's result carries an ExactClusterInfo (TSN clusters fall
/// back with ExactFallback::UnsupportedBackend).
Expected<MulticlusterResult> analyze_multicluster_exact(
    const SystemModel& model, std::span<const ClusterLayout> layouts,
    const AnalysisOptions& options, const MulticlusterOptions& mc_options = {},
    std::span<AnalysisComponentCache* const> caches = {},
    AnalysisWorkCounters* counters = nullptr);

/// One ET activity's holistic-vs-exact bound pair.
struct PessimismActivity {
  std::size_t cluster = 0;
  bool is_task = false;
  std::uint32_t index = 0;  ///< TaskId / MessageId value within the cluster
  Time holistic = 0;        ///< graph-relative bound; kTimeInfinity = unbounded
  Time exact = 0;
};

/// Holistic-vs-exact gap statistics over every ET activity of an exact
/// analysis run (derived from the ExactClusterInfo records alone — no
/// re-analysis).  Relative gaps are (holistic - exact) / holistic, so 0
/// means "no refinement" and 0.25 means "the holistic bound was 25% above
/// the exact one"; activities with an unbounded or zero holistic bound are
/// excluded from the mean/max.
struct PessimismReport {
  std::size_t activities = 0;  ///< ET activities compared
  std::size_t refined = 0;     ///< exact strictly below holistic
  std::size_t unbounded = 0;   ///< holistic bound infinite
  double mean_gap = 0.0;
  double max_gap = 0.0;
  std::uint64_t explored_states = 0;
  std::uint64_t merged_states = 0;
  /// True when any cluster fell back to its holistic bounds.
  bool any_fallback = false;
  std::vector<ExactFallback> cluster_fallbacks;
  std::vector<PessimismActivity> entries;
};

/// Builds the report from per-cluster exact results (`clusters[c]` must
/// carry the ExactClusterInfo the exact backend attached; clusters without
/// one contribute zero-gap entries).  `apps[c]` is cluster c's application
/// projection.
[[nodiscard]] PessimismReport make_pessimism_report(std::span<const Application* const> apps,
                                                    std::span<const AnalysisResult> clusters);

}  // namespace flexopt
