#pragma once

/// \file schedule_space.hpp
/// Exact DYN-segment schedule-space exploration (the np-schedulability-
/// analysis idea adapted to FlexRay FTDMA): a breadth-first reachability
/// walk over bus cycles whose states are keyed by the per-message
/// transmitted-job count, with identical-state merging and dominance
/// pruning.
///
/// The explored behaviour space is a superset of the simulator's: each DYN
/// job of message m released at r = k * T_m becomes ready (reaches the
/// sender CHI) somewhere in [r, r + J_m], where J_m is the converged
/// holistic release jitter — a sound bound on the sender's completion.  Per
/// cycle the walk classifies each pending head job as
///  * must-ready  (r + J_m <= earliest possible slot time of its FrameID) —
///    certainly in the CHI when its minislot arrives, or
///  * maybe-ready (released before the cycle ends) — the walk branches over
///    ready/not-ready,
/// and then replays the minislot arbitration exactly as the discrete-event
/// engine does (sim/engine.cpp DynSlot): walk FrameIDs from the segment
/// start, transmit the highest-priority ready head if the slot counter is
/// within the owner's pLatestTx, advance the counter by the frame's
/// minislot count (else by one).  Where the engine breaks priority ties by
/// CHI arrival order — unresolvable from intervals — the walk forks over
/// every tied candidate.  Supersets on every axis means: max explored
/// finish >= every finish the simulator can observe.
///
/// Dominance: of two states in the same cycle, the one with pointwise >=
/// transmitted counts has pointwise less backlog, so every future finish
/// reachable from it is also reachable (no later) from the less progressed
/// state; the more progressed state is dropped.
///
/// Parallel exploration (ExactOptions::jobs): each cycle fans out over a
/// sharded state table whose shard count is FIXED (independent of the
/// worker count) — states are routed to shards by a hash of the
/// transmitted-count key.  Workers steal source shards from a shared atomic
/// cursor, write successors into per-(worker, target-shard) buffers
/// (lock-free handoff — no shared successor structure), and after a barrier
/// steal target shards to merge: open-addressing dedup, lexicographic key
/// sort, then a shard-local pointwise-<= dominance sweep over the SoA rows.
/// Small frontiers get one extra cross-shard sweep (the serial engine's
/// dominance_sweep_limit regime).  Because shard membership, per-shard
/// sorted order, the dominance relation and every counter are functions of
/// the key set alone — never of which worker produced a state — the result
/// is bit-identical for any worker count.

#include <cstdint>
#include <span>
#include <vector>

#include "flexopt/analysis/analysis_mode.hpp"
#include "flexopt/util/time.hpp"

namespace flexopt {

class BusLayout;

/// Outcome of one cluster's exploration.
struct ScheduleSpaceResult {
  ExactFallback fallback = ExactFallback::None;
  /// Worst explored finish per message, graph-relative, indexed by
  /// MessageId.  kTimeInfinity for ST messages and for DYN messages whose
  /// jobs did not all complete within the cycle horizon (no refinement) —
  /// i.e. exactly the values to feed analyze_system's dyn_message_caps.
  /// Empty when `fallback` != None.
  std::vector<Time> worst_completion;
  std::uint64_t explored_states = 0;  ///< frontier sizes summed over cycles
  std::uint64_t merged_states = 0;    ///< identical-key + dominance merges
  std::uint64_t transitions = 0;      ///< successor states generated
};

/// Explores all DYN jobs released in [0, hyperperiod * options.hyperperiods)
/// to completion, walking bus cycles up to `horizon` (use analysis_horizon).
/// `message_jitter` must hold finite converged holistic release jitters for
/// every DYN message (callers gate on convergence first).
[[nodiscard]] ScheduleSpaceResult explore_dyn_schedule_space(
    const BusLayout& layout, std::span<const Time> message_jitter, Time horizon,
    const ExactOptions& options);

}  // namespace flexopt
