#pragma once

/// \file system_analysis.hpp
/// Holistic scheduling + schedulability analysis of a complete FlexRay
/// system (Section 5): builds the static schedule table, then iterates
/// response-time analysis for FPS tasks and DYN messages with jitter
/// propagation along the task graphs until a global fixed point.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "flexopt/analysis/analysis_mode.hpp"
#include "flexopt/analysis/cost.hpp"
#include "flexopt/analysis/dyn_analysis.hpp"
#include "flexopt/analysis/list_scheduler.hpp"
#include "flexopt/analysis/static_schedule.hpp"
#include "flexopt/util/expected.hpp"

namespace flexopt {

class BusLayout;  // flexopt/flexray/bus_layout.hpp (kept out of cluster-generic includes)

struct AnalysisOptions {
  SchedulerOptions scheduler;
  /// BusCycles_m bound for DYN messages; the multiplicity-capped refinement
  /// is tighter and only marginally slower (binary search per fixed-point
  /// step).
  DynCyclesBound dyn_bound = DynCyclesBound::MultiplicityCapped;
  /// Global holistic iterations before declaring divergence.
  int max_holistic_iterations = 32;
  /// Response-time horizon as a multiple of max(hyper-period, max deadline);
  /// any recurrence exceeding it is reported unbounded.
  int horizon_factor = 4;
  /// Log per-iteration convergence diagnostics (log_debug level).
  bool debug_trace = false;
  /// Which backend produces the ET bounds.  Exact routes through the DYN
  /// schedule-space exploration (flexopt/analysis/exact/); Simulate is
  /// analysis-wise identical to Holistic (the simulator lane is a campaign
  /// concern).
  AnalysisMode mode = AnalysisMode::Holistic;
  /// Exploration knobs, used only when mode == AnalysisMode::Exact.
  ExactOptions exact;
};

/// Recompute accounting of the evaluation pipeline.  One "analysis
/// component" is one unit of real work: a static-schedule table build, one
/// FPS response-time recurrence, or one DYN message WCRT recurrence.  The
/// Fig. 9 runtime argument is about how many of these a search performs;
/// bench_delta_eval gates the full-vs-delta ratio on components().
struct AnalysisWorkCounters {
  std::uint64_t schedule_builds = 0;  ///< static-segment tables built
  std::uint64_t schedule_reuses = 0;  ///< tables served from the component cache
  std::uint64_t fps_analyses = 0;     ///< fps_response_time calls (per task per pass)
  std::uint64_t fps_skipped = 0;      ///< FPS recomputations skipped (inputs unchanged)
  std::uint64_t dyn_analyses = 0;     ///< dyn_response_time calls (per message per pass)
  std::uint64_t dyn_skipped = 0;      ///< DYN recomputations skipped (inputs unchanged)
  std::uint64_t holistic_iterations = 0;
  /// Inner fixed-point iterations summed over every FPS/DYN recurrence —
  /// the "how hard did each recomputed component work" axis the coarse
  /// per-component counters cannot see.
  std::uint64_t fixed_point_iterations = 0;
  /// Exact schedule-space engine (AnalysisMode::Exact only): states
  /// expanded, states merged away (identical-key dedup + dominance), and
  /// per-cluster explorations served verbatim from the exact-space cache
  /// instead of re-explored.
  std::uint64_t exact_states_explored = 0;
  std::uint64_t exact_states_deduped = 0;
  std::uint64_t exact_frontier_reused = 0;

  /// Total recomputed components (the delta-vs-full gate metric).
  [[nodiscard]] std::uint64_t components() const {
    return schedule_builds + fps_analyses + dyn_analyses;
  }
  AnalysisWorkCounters& operator+=(const AnalysisWorkCounters& o) {
    schedule_builds += o.schedule_builds;
    schedule_reuses += o.schedule_reuses;
    fps_analyses += o.fps_analyses;
    fps_skipped += o.fps_skipped;
    dyn_analyses += o.dyn_analyses;
    dyn_skipped += o.dyn_skipped;
    holistic_iterations += o.holistic_iterations;
    fixed_point_iterations += o.fixed_point_iterations;
    exact_states_explored += o.exact_states_explored;
    exact_states_deduped += o.exact_states_deduped;
    exact_frontier_reused += o.exact_frontier_reused;
    return *this;
  }
  /// Field-wise delta against an earlier snapshot of the same counters.
  [[nodiscard]] AnalysisWorkCounters since(const AnalysisWorkCounters& before) const {
    AnalysisWorkCounters d;
    d.schedule_builds = schedule_builds - before.schedule_builds;
    d.schedule_reuses = schedule_reuses - before.schedule_reuses;
    d.fps_analyses = fps_analyses - before.fps_analyses;
    d.fps_skipped = fps_skipped - before.fps_skipped;
    d.dyn_analyses = dyn_analyses - before.dyn_analyses;
    d.dyn_skipped = dyn_skipped - before.dyn_skipped;
    d.holistic_iterations = holistic_iterations - before.holistic_iterations;
    d.fixed_point_iterations = fixed_point_iterations - before.fixed_point_iterations;
    d.exact_states_explored = exact_states_explored - before.exact_states_explored;
    d.exact_states_deduped = exact_states_deduped - before.exact_states_deduped;
    d.exact_frontier_reused = exact_frontier_reused - before.exact_frontier_reused;
    return d;
  }
};

/// Full analysis outcome for one (application, bus configuration) pair.
struct AnalysisResult {
  /// Graph-relative worst-case completion bound per task / message
  /// (kTimeInfinity when unbounded).  For TT activities this is the table
  /// finish relative to the graph release; for ET activities it is the
  /// holistic response time including inherited jitter.
  std::vector<Time> task_completion;
  std::vector<Time> message_completion;
  /// Release jitter used in the final iteration (diagnostics / tests).
  std::vector<Time> task_jitter;
  std::vector<Time> message_jitter;
  /// The static-segment schedule table, shared with (not copied from) the
  /// component cache: every analysis whose configuration maps to the same
  /// table geometry holds a reference to one immutable instance, so
  /// delta evaluation never deep-copies slot tables in its hot path.
  std::shared_ptr<const StaticSchedule> schedule_ptr;
  Cost cost;
  /// False when the holistic iteration hit max_holistic_iterations and the
  /// ET completions were pinned to infinity.  Incremental re-evaluation
  /// (analyze_system_incremental) only seeds from converged results.
  bool converged = true;
  /// Set only by the exact backend (AnalysisMode::Exact): refinement
  /// statistics plus the holistic reference bounds.  Shared, immutable,
  /// cheap to copy along with the result; null for holistic analyses.
  std::shared_ptr<const ExactClusterInfo> exact;
  [[nodiscard]] bool schedulable() const { return cost.schedulable; }
  /// The schedule table (an empty table when analysis never built one).
  [[nodiscard]] const StaticSchedule& schedule() const {
    static const StaticSchedule empty{0, 0, 0, 0};
    return schedule_ptr ? *schedule_ptr : empty;
  }
};

/// Response-time horizon shared by the full and incremental analyses:
/// max(hyper-period, max effective deadline) * options.horizon_factor.
/// Fails when the hyper-period overflows.
Expected<Time> analysis_horizon(const Application& app, const AnalysisOptions& options);

/// Runs GlobalSchedulingAlgorithm (Fig. 2) + holistic response-time
/// analysis.  Fails only on structural errors (e.g. no ST slot placement
/// possible); an unschedulable system is a *successful* analysis with a
/// positive cost.
///
/// Reentrancy guarantee: the analysis reads `layout` and `options` only and
/// keeps all state on the stack — concurrent calls (the CostEvaluator
/// worker pool fans candidate configurations across threads) are safe as
/// long as each call gets its own BusLayout.
/// `counters` (optional) accumulates the work performed — the baseline the
/// incremental engine is measured against.
/// `external_task_jitter` (optional, indexed by TaskId; empty = none) adds
/// a release-jitter floor per task on top of precedence-induced jitter —
/// the hook the cross-cluster fixed point (flexopt/analysis/
/// multicluster.hpp) uses to feed gateway forwarding relays the completion
/// bounds of their upstream hops.  An empty span leaves the analysis
/// bit-identical to the pre-cluster behaviour.
/// `dyn_message_caps` (optional, indexed by MessageId; empty = none) clamps
/// each DYN message's response-time recurrence to min(recurrence, cap)
/// inside the fixed point — the hook the exact backend uses to fold its
/// explored worst-case finish times back into the holistic iteration.  The
/// minimum of two sound monotone bounds is sound and monotone, so the
/// capped fixed point converges and every completion (tasks included,
/// through the tightened jitters) is <= its uncapped counterpart.
/// When options.mode == AnalysisMode::Exact and no caps are given, the call
/// dispatches to the exact backend (analyze_system_exact), which runs the
/// holistic analysis, explores the DYN schedule space, and re-runs the
/// fixed point with the explored caps.
Expected<AnalysisResult> analyze_system(const BusLayout& layout,
                                        const AnalysisOptions& options = {},
                                        AnalysisWorkCounters* counters = nullptr,
                                        std::span<const Time> external_task_jitter = {},
                                        std::span<const Time> dyn_message_caps = {});

}  // namespace flexopt
