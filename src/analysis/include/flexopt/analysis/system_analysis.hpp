#pragma once

/// \file system_analysis.hpp
/// Holistic scheduling + schedulability analysis of a complete FlexRay
/// system (Section 5): builds the static schedule table, then iterates
/// response-time analysis for FPS tasks and DYN messages with jitter
/// propagation along the task graphs until a global fixed point.

#include <vector>

#include "flexopt/analysis/cost.hpp"
#include "flexopt/analysis/dyn_analysis.hpp"
#include "flexopt/analysis/list_scheduler.hpp"
#include "flexopt/analysis/static_schedule.hpp"
#include "flexopt/flexray/bus_layout.hpp"
#include "flexopt/util/expected.hpp"

namespace flexopt {

struct AnalysisOptions {
  SchedulerOptions scheduler;
  /// BusCycles_m bound for DYN messages; the multiplicity-capped refinement
  /// is tighter and only marginally slower (binary search per fixed-point
  /// step).
  DynCyclesBound dyn_bound = DynCyclesBound::MultiplicityCapped;
  /// Global holistic iterations before declaring divergence.
  int max_holistic_iterations = 32;
  /// Response-time horizon as a multiple of max(hyper-period, max deadline);
  /// any recurrence exceeding it is reported unbounded.
  int horizon_factor = 4;
  /// Log per-iteration convergence diagnostics (log_debug level).
  bool debug_trace = false;
};

/// Full analysis outcome for one (application, bus configuration) pair.
struct AnalysisResult {
  /// Graph-relative worst-case completion bound per task / message
  /// (kTimeInfinity when unbounded).  For TT activities this is the table
  /// finish relative to the graph release; for ET activities it is the
  /// holistic response time including inherited jitter.
  std::vector<Time> task_completion;
  std::vector<Time> message_completion;
  /// Release jitter used in the final iteration (diagnostics / tests).
  std::vector<Time> task_jitter;
  std::vector<Time> message_jitter;
  StaticSchedule schedule{0, 0, 0, 0};
  Cost cost;
  [[nodiscard]] bool schedulable() const { return cost.schedulable; }
};

/// Runs GlobalSchedulingAlgorithm (Fig. 2) + holistic response-time
/// analysis.  Fails only on structural errors (e.g. no ST slot placement
/// possible); an unschedulable system is a *successful* analysis with a
/// positive cost.
///
/// Reentrancy guarantee: the analysis reads `layout` and `options` only and
/// keeps all state on the stack — concurrent calls (the CostEvaluator
/// worker pool fans candidate configurations across threads) are safe as
/// long as each call gets its own BusLayout.
Expected<AnalysisResult> analyze_system(const BusLayout& layout,
                                        const AnalysisOptions& options = {});

}  // namespace flexopt
