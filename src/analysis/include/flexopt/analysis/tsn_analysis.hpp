#pragma once

/// \file tsn_analysis.hpp
/// The TSN/switched-Ethernet cluster backend: time-aware shapers (802.1Qbv
/// style) for the time-triggered traffic and non-preemptive strict-priority
/// arbitration for the event-triggered traffic, analysed with the same
/// holistic fixed-point structure as the FlexRay cluster so both plug into
/// the cross-cluster iteration of analyze_multicluster unchanged.
///
/// Model and assumptions (documented in README "Cluster backends"):
///  * One switch per cluster; each processing node hangs off one full-duplex
///    port.  Contention happens on the *egress* link towards a message's
///    receiver node; sender uplinks are assumed uncongested (single switch,
///    store-and-forward, full duplex).
///  * Every ST message owns a dedicated gate window `[offset, offset+len)`
///    on its receiver's egress port, repeating with the gating cycle.
///    Windows of one port must not overlap; a window must fit its frame.
///  * ET frames are queued per egress port and served non-preemptively by
///    strict priority (FIFO among equals) in the gaps between gate windows;
///    a frame only starts if it completes before the next gate opening
///    (guard banding), otherwise the port idles until the window passes.
///  * The ET response-time bound charges, per busy window: one blocking
///    frame of lower priority, the classic jitter-aware higher-priority
///    demand, and for every gate-window occurrence overlapping the busy
///    window its closure time plus one guard-band idle (at most the longest
///    ET frame of the port).  The recurrence is monotone in the release
///    jitters, so the cross-cluster Jacobi iteration stays a least fixed
///    point.  A response exceeding the message period is reported unbounded
///    (the bound assumes at most one pending instance per message).

#include <cstddef>
#include <span>
#include <vector>

#include "flexopt/analysis/busy_profile.hpp"
#include "flexopt/analysis/list_scheduler.hpp"
#include "flexopt/analysis/static_schedule.hpp"
#include "flexopt/analysis/system_analysis.hpp"
#include "flexopt/model/application.hpp"
#include "flexopt/model/cluster_backend.hpp"
#include "flexopt/util/expected.hpp"

namespace flexopt {

/// A validated (application, TsnConfig) pair with derived per-message and
/// per-port geometry — the TSN analogue of BusLayout.  Value-semantic and
/// cheap to rebuild; `assign` reuses buffers for optimizer hot loops.
class TsnLayout {
 public:
  TsnLayout() = default;

  /// Validates `config` against `app` (finalized, single cluster declared
  /// Tsn or default) and derives frame durations, egress ports and per-port
  /// gate geometry.  Checks: positive cycle and link rate, per-message gate
  /// tables sized to the message count, every ST message has a window that
  /// fits its frame inside the cycle, ET messages have the zero window, and
  /// windows on one egress port do not overlap.
  static Expected<TsnLayout> build(const Application& app, TsnConfig config);

  /// In-place rebuild against the same application (same shape contract as
  /// BusLayout::assign).
  Expected<bool> assign(const Application& app, const TsnConfig& config);

  [[nodiscard]] const TsnConfig& config() const { return config_; }
  [[nodiscard]] const Application& application() const { return *app_; }

  /// Gating cycle (the TSN analogue of the FlexRay bus cycle).
  [[nodiscard]] Time cycle_len() const { return config_.cycle; }

  /// Wire time of one message frame (Eq. 1 analogue at the cluster's link
  /// rate).
  [[nodiscard]] Time duration(MessageId m) const { return durations_[index_of(m)]; }
  [[nodiscard]] const std::vector<Time>& message_durations() const { return durations_; }

  /// Egress port a message competes on: its receiver task's node index.
  [[nodiscard]] std::size_t egress_port(MessageId m) const { return egress_port_[index_of(m)]; }

  /// Gate windows reserved on one egress port, sorted by offset, all within
  /// [0, cycle).
  [[nodiscard]] std::span<const Interval> port_windows(std::size_t node_index) const {
    return port_windows_[node_index];
  }
  /// Total gate-closed time per cycle on one port (sum of window lengths).
  [[nodiscard]] Time port_closed_per_cycle(std::size_t node_index) const {
    return port_closed_[node_index];
  }
  /// Longest ET frame transmitted over one port (the guard-band idle cap);
  /// 0 when the port carries no ET traffic.
  [[nodiscard]] Time port_max_et_frame(std::size_t node_index) const {
    return port_max_et_[node_index];
  }

  /// Dense index of an ST message among the ST messages of the application
  /// (used as the informational `slot` of schedule/trace entries); -1 for
  /// ET messages.
  [[nodiscard]] int st_ordinal(MessageId m) const { return st_ordinal_[index_of(m)]; }

 private:
  const Application* app_ = nullptr;
  TsnConfig config_;
  std::vector<Time> durations_;            ///< per message
  std::vector<std::size_t> egress_port_;   ///< per message
  std::vector<int> st_ordinal_;            ///< per message
  std::vector<std::vector<Interval>> port_windows_;  ///< per node
  std::vector<Time> port_closed_;          ///< per node
  std::vector<Time> port_max_et_;          ///< per node
};

/// Builds the time-triggered schedule table of a TSN cluster: SCS task
/// instances are placed ASAP into per-node idle gaps in topological order,
/// ST message instances take the first gate-window occurrence at or after
/// their readiness (each instance a fresh occurrence).  Emits the same
/// StaticSchedule the FlexRay list scheduler produces, so the holistic
/// analysis, the simulator and the component caches reuse it unchanged.
/// Only `options.max_slot_search_cycles` is honoured (gate occurrence
/// search bound); placement heuristics are FlexRay-specific.
Expected<StaticSchedule> build_tsn_schedule(const TsnLayout& layout,
                                            const SchedulerOptions& options = {});

/// Holistic analysis of one TSN cluster — the analyze_system counterpart
/// dispatched by analyze_multicluster for ClusterBackendKind::Tsn.  Same
/// contract: monotone in `external_task_jitter`, pins ET completions to
/// kTimeInfinity on divergence, reports unschedulable systems as successful
/// analyses with positive cost.
Expected<AnalysisResult> analyze_tsn_cluster(const TsnLayout& layout,
                                             const AnalysisOptions& options = {},
                                             AnalysisWorkCounters* counters = nullptr,
                                             std::span<const Time> external_task_jitter = {});

}  // namespace flexopt
