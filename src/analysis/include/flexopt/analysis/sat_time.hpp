#pragma once

/// \file sat_time.hpp
/// Saturating arithmetic on Time with kTimeInfinity as the absorbing
/// "unschedulable" element.  Holistic analysis propagates infinite response
/// times through jitters; plain + would overflow.

#include "flexopt/util/time.hpp"

namespace flexopt {

constexpr bool is_infinite(Time t) { return t == kTimeInfinity; }

constexpr Time sat_add(Time a, Time b) {
  if (is_infinite(a) || is_infinite(b)) return kTimeInfinity;
  if (a > kTimeInfinity - b) return kTimeInfinity;  // both non-negative in practice
  return a + b;
}

constexpr Time sat_mul(Time a, std::int64_t k) {
  if (is_infinite(a)) return kTimeInfinity;
  if (k != 0 && a > kTimeInfinity / k) return kTimeInfinity;
  return a * k;
}

}  // namespace flexopt
