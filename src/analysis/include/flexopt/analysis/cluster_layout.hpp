#pragma once

/// \file cluster_layout.hpp
/// Backend-tagged per-cluster layout — the validated (application, config)
/// pair the cluster-generic layers analyse and simulate without knowing
/// which protocol the cluster speaks.  This is the runtime face of the
/// ClusterBackend interface: ClusterConfig (flexray/system_config.hpp) is
/// the decision-variable side, ClusterLayout the derived-geometry side, and
/// analyze_multicluster dispatches per cluster on `kind()`.

#include "flexopt/analysis/tsn_analysis.hpp"
#include "flexopt/flexray/bus_layout.hpp"
#include "flexopt/flexray/system_config.hpp"
#include "flexopt/model/cluster_backend.hpp"
#include "flexopt/util/expected.hpp"

namespace flexopt {

class ClusterLayout {
 public:
  ClusterLayout() = default;

  /// Validates the payload selected by `config.kind` against `app`; the
  /// other payload stays default-constructed.
  static Expected<ClusterLayout> build(const Application& app, const BusParams& params,
                                       const ClusterConfig& config) {
    ClusterLayout out;
    out.kind_ = config.kind;
    if (config.kind == ClusterBackendKind::Tsn) {
      auto tsn = TsnLayout::build(app, config.tsn);
      if (!tsn.ok()) return tsn.error();
      out.tsn_ = std::move(tsn).value();
    } else {
      auto flexray = BusLayout::build(app, params, config.flexray);
      if (!flexray.ok()) return flexray.error();
      out.flexray_ = std::move(flexray).value();
    }
    return out;
  }

  [[nodiscard]] ClusterBackendKind kind() const { return kind_; }
  [[nodiscard]] const BusLayout& flexray() const { return flexray_; }
  [[nodiscard]] const TsnLayout& tsn() const { return tsn_; }

  /// Communication cycle of the backend (FlexRay bus cycle / TSN gating
  /// cycle) — what simulators align replay horizons to.
  [[nodiscard]] Time cycle_len() const {
    return kind_ == ClusterBackendKind::Tsn ? tsn_.cycle_len() : flexray_.cycle_len();
  }

  [[nodiscard]] const Application& application() const {
    return kind_ == ClusterBackendKind::Tsn ? tsn_.application() : flexray_.application();
  }

 private:
  ClusterBackendKind kind_ = ClusterBackendKind::FlexRay;
  BusLayout flexray_;
  TsnLayout tsn_;
};

}  // namespace flexopt
