#pragma once

/// \file fps_analysis.hpp
/// Worst-case response times of FPS tasks executing in the slack of the
/// static schedule (Section 5, item 1: "take into consideration the
/// interference from the SCS activities").
///
/// Model: on each node, SCS jobs occupy the CPU at table-fixed times
/// (non-preemptable, effectively highest priority); FPS tasks are
/// priority-preemptive among themselves in the remaining slack.  The
/// response-time recurrence is the classic jitter-aware one extended with a
/// term S(w) = maximum SCS busy time in any window of length w:
///
///   w = C_i + S(w) + sum_{j in hp(i)} ceil((w + J_j) / T_j) * C_j
///   R_i = J_i + w
///
/// S(w) upper-bounds the table interference for every possible critical
/// instant, which makes the analysis sustainable (release-time independent)
/// at the cost of some pessimism; the simulator-based property tests bound
/// that pessimism.

#include <span>

#include "flexopt/analysis/busy_profile.hpp"
#include "flexopt/model/ids.hpp"
#include "flexopt/util/time.hpp"

namespace flexopt {

/// Per-task inputs of the FPS analysis.
struct FpsTaskParams {
  TaskId id{};
  Time wcet = 0;
  Time period = 0;
  /// Release jitter inherited from predecessors (holistic iteration).
  Time jitter = 0;
  /// Smaller = higher priority.
  int priority = 0;
};

/// Response time (including the task's own jitter) of `task` when competing
/// with `same_node` FPS tasks (which may include `task` itself; it is
/// skipped) in the slack of `scs`.  Tasks with priority <= task.priority
/// interfere (equal priorities are mutually interfering — conservative
/// FIFO-agnostic treatment).  Returns kTimeInfinity if the recurrence
/// exceeds `horizon` or any contributing jitter is infinite.
/// `fp_iterations` (optional) accumulates the fixed-point iteration count
/// (the profiling counters' work axis).  `seed` is a pre-jitter seed for
/// the busy-window iteration (see iterate_to_fixed_point): it must be a
/// least-fixed-point lower bound, e.g. the converged busy value of the
/// same task against a subset of the SCS interference.  The returned
/// response is identical to the unseeded call; only the iteration count
/// shrinks.
Time fps_response_time(const FpsTaskParams& task, std::span<const FpsTaskParams> same_node,
                       const BusyProfile& scs, Time horizon, int* fp_iterations = nullptr,
                       Time seed = 0);

/// Sum of response times of all tasks in `same_node` (infinite responses
/// are added as `horizon` each, keeping the sum finite and comparable).
/// Used by the list scheduler to rank candidate SCS placements
/// (Fig. 2, line 11).  `seeds` (optional, parallel to `same_node`) carries
/// per-task busy-value seeds computed against an interference *subset* —
/// the base placement profile; an infinite seed short-circuits that task
/// to an infinite response (exact: more interference can only grow a
/// diverged recurrence).  The sum is bit-identical with and without seeds.
Time fps_response_time_sum(std::span<const FpsTaskParams> same_node, const BusyProfile& scs,
                           Time horizon, std::span<const Time> seeds = {});

}  // namespace flexopt
