#pragma once

/// \file dyn_analysis.hpp
/// Worst-case response time of DYN messages (Section 5.1 of the paper,
/// reimplementing the analysis the paper imports from [14]).
///
///   R_m = J_m + w_m + C_m                                   (Eq. 2)
///   w_m(t) = sigma_m + BusCycles_m(t) * gdCycle + w'_m(t)   (Eq. 3)
///
/// Interference sources on a DYN message m with FrameID f sent by node Np:
///  * hp(m): higher-priority messages with the same FrameID — each instance
///    occupies m's slot for a whole cycle;
///  * lf(m): messages with lower FrameIDs — their transmissions advance the
///    minislot counter beyond the one-minislot baseline of an empty slot;
///  * ms(m): the f-1 lower DYN slots — one minislot each even when unused.
///
/// A cycle is "filled" (unusable by m) when the minislot counter exceeds
/// pLatestTx(Np) at slot f, or slot f is taken by hp(m).  With
///   need = pLatestTx(Np) - f + 1   extra minislots required to fill,
/// the worst case over release phasings within a window t is
///   BusCycles_m(t) = n_hp(t) + floor(excess_lf(t) / need)
/// where excess_lf(t) counts, over all lf(m) instances released in t, the
/// minislots their frames occupy beyond the empty-slot baseline
/// (minislots_j - 1 each).  This is the polynomial-time bound of [14]:
/// distributing interference differently can only fill fewer cycles
/// because each filled cycle consumes at least `need` excess, and a filled
/// cycle always delays m for longer than the same excess spent inside the
/// final cycle (gdCycle >= need * gdMinislot).

#include <cstdint>
#include <span>
#include <vector>

#include "flexopt/model/ids.hpp"
#include "flexopt/util/time.hpp"

namespace flexopt {

class BusLayout;  // flexopt/flexray/bus_layout.hpp (kept out of cluster-generic includes)

/// How BusCycles_m is bounded.  [14] offers both exact approaches and
/// polynomial heuristics; we provide the greedy heuristic plus a refined
/// polynomial bound that additionally respects the protocol constraint
/// that each lf(m) message transmits at most once per cycle (one slot per
/// FrameID per cycle), so a burst of instances of a single message cannot
/// all be packed into one filled cycle.
enum class DynCyclesBound {
  /// filled = n_hp + floor(total_excess / need) — fastest, most pessimistic.
  Greedy,
  /// filled = n_hp + max k with sum_j w_j * min(n_j, k) >= k * need
  /// (binary search).  Tighter; still a sound upper bound because the
  /// multiplicity cap only removes physically impossible fillings.
  MultiplicityCapped,
};

/// Decomposition of one DYN WCRT computation, exposed for tests and for the
/// Fig. 7 curve bench.
struct DynResponse {
  Time response = kTimeInfinity;  ///< R_m including jitter
  Time w = kTimeInfinity;         ///< queuing delay w_m
  std::int64_t bus_cycles = 0;    ///< BusCycles_m at the fixed point
  bool transmittable = false;     ///< false when FrameID > pLatestTx (never sends)
  bool converged = false;
};

/// WCRT of DYN message `m`.  `jitters` is indexed by MessageId and supplies
/// the holistic release jitters of every DYN message (entries for ST
/// messages are ignored).  `horizon` bounds the fixed-point iteration.
/// `fp_iterations` (optional) accumulates the inner fixed-point iteration
/// count (the profiling counters' work axis).
DynResponse dyn_response_time(const BusLayout& layout, MessageId m,
                              std::span<const Time> jitters, Time horizon,
                              DynCyclesBound bound = DynCyclesBound::Greedy,
                              int* fp_iterations = nullptr);

/// One hp(m) / lf(m) interference-set member in prebuilt (arena) form:
/// enough to evaluate the recurrence without touching BusLayout.
struct DynInterferer {
  std::uint32_t msg = 0;     ///< MessageId index (jitter lookup)
  Time period = 0;
  std::int64_t weight = 0;   ///< excess minislots (lf) — may be <= 0; unused for hp
};

/// Reusable buffers of dyn_response_time_prepared (one per analysis arena;
/// capacity persists across calls, so the steady state is allocation-free).
struct DynScratch {
  std::vector<Time> hp_jitter;
  std::vector<Time> hp_period;
  std::vector<Time> lf_jitter;
  std::vector<Time> lf_period;
  std::vector<std::int64_t> lf_counts;
  std::vector<std::int64_t> lf_weights;
};

/// Configuration-dependent scalars of one DYN message's recurrence,
/// precomputed once per evaluation (flexopt/analysis/arena.hpp).
struct DynPrepared {
  int fid = 0;
  int p_latest = 0;
  Time cycle = 0;
  Time minislot = 0;
  Time st_segment_len = 0;
  Time sigma = 0;
  Time occupancy = 0;
};

/// dyn_response_time over prebuilt inputs: `hp` / `lf` are the interference
/// sets (lf must contain EVERY lower-FrameID DYN message, zero-excess
/// members included — an infinite jitter on one of them unbounds the
/// response even though it contributes no excess), `msg_jitter` is indexed
/// by MessageId, `own_jitter` is m's own release jitter.  Bit-identical to
/// dyn_response_time on the same inputs.
DynResponse dyn_response_time_prepared(const DynPrepared& in, std::span<const DynInterferer> hp,
                                       std::span<const DynInterferer> lf,
                                       std::span<const Time> msg_jitter, Time own_jitter,
                                       Time horizon, DynCyclesBound bound, DynScratch& scratch,
                                       int* fp_iterations = nullptr);

/// sigma_m of Eq. 3: the longest in-cycle delay when m is produced just
/// after its slot went by — the slot passes earliest when all lower slots
/// are empty minislots.
Time dyn_sigma(const BusLayout& layout, MessageId m);

}  // namespace flexopt
