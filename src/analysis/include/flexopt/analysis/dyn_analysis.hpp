#pragma once

/// \file dyn_analysis.hpp
/// Worst-case response time of DYN messages (Section 5.1 of the paper,
/// reimplementing the analysis the paper imports from [14]).
///
///   R_m = J_m + w_m + C_m                                   (Eq. 2)
///   w_m(t) = sigma_m + BusCycles_m(t) * gdCycle + w'_m(t)   (Eq. 3)
///
/// Interference sources on a DYN message m with FrameID f sent by node Np:
///  * hp(m): higher-priority messages with the same FrameID — each instance
///    occupies m's slot for a whole cycle;
///  * lf(m): messages with lower FrameIDs — their transmissions advance the
///    minislot counter beyond the one-minislot baseline of an empty slot;
///  * ms(m): the f-1 lower DYN slots — one minislot each even when unused.
///
/// A cycle is "filled" (unusable by m) when the minislot counter exceeds
/// pLatestTx(Np) at slot f, or slot f is taken by hp(m).  With
///   need = pLatestTx(Np) - f + 1   extra minislots required to fill,
/// the worst case over release phasings within a window t is
///   BusCycles_m(t) = n_hp(t) + floor(excess_lf(t) / need)
/// where excess_lf(t) counts, over all lf(m) instances released in t, the
/// minislots their frames occupy beyond the empty-slot baseline
/// (minislots_j - 1 each).  This is the polynomial-time bound of [14]:
/// distributing interference differently can only fill fewer cycles
/// because each filled cycle consumes at least `need` excess, and a filled
/// cycle always delays m for longer than the same excess spent inside the
/// final cycle (gdCycle >= need * gdMinislot).

#include <span>

#include "flexopt/flexray/bus_layout.hpp"
#include "flexopt/util/time.hpp"

namespace flexopt {

/// How BusCycles_m is bounded.  [14] offers both exact approaches and
/// polynomial heuristics; we provide the greedy heuristic plus a refined
/// polynomial bound that additionally respects the protocol constraint
/// that each lf(m) message transmits at most once per cycle (one slot per
/// FrameID per cycle), so a burst of instances of a single message cannot
/// all be packed into one filled cycle.
enum class DynCyclesBound {
  /// filled = n_hp + floor(total_excess / need) — fastest, most pessimistic.
  Greedy,
  /// filled = n_hp + max k with sum_j w_j * min(n_j, k) >= k * need
  /// (binary search).  Tighter; still a sound upper bound because the
  /// multiplicity cap only removes physically impossible fillings.
  MultiplicityCapped,
};

/// Decomposition of one DYN WCRT computation, exposed for tests and for the
/// Fig. 7 curve bench.
struct DynResponse {
  Time response = kTimeInfinity;  ///< R_m including jitter
  Time w = kTimeInfinity;         ///< queuing delay w_m
  std::int64_t bus_cycles = 0;    ///< BusCycles_m at the fixed point
  bool transmittable = false;     ///< false when FrameID > pLatestTx (never sends)
  bool converged = false;
};

/// WCRT of DYN message `m`.  `jitters` is indexed by MessageId and supplies
/// the holistic release jitters of every DYN message (entries for ST
/// messages are ignored).  `horizon` bounds the fixed-point iteration.
DynResponse dyn_response_time(const BusLayout& layout, MessageId m,
                              std::span<const Time> jitters, Time horizon,
                              DynCyclesBound bound = DynCyclesBound::Greedy);

/// sigma_m of Eq. 3: the longest in-cycle delay when m is produced just
/// after its slot went by — the slot passes earliest when all lower slots
/// are empty minislots.
Time dyn_sigma(const BusLayout& layout, MessageId m);

}  // namespace flexopt
