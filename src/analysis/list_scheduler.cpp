#include "flexopt/analysis/list_scheduler.hpp"

#include "flexopt/flexray/bus_layout.hpp"

#include <algorithm>
#include <map>
#include <span>
#include <vector>

#include "flexopt/analysis/fps_analysis.hpp"

namespace flexopt {
namespace {

/// A time-triggered job: one hyper-period instance of an SCS task or an ST
/// message.
struct Job {
  ActivityRef activity;
  int instance = 0;
  Time release = 0;
};

/// Per-node CPU timeline during construction: sorted disjoint busy
/// intervals, linear gap search (tables have at most a few hundred jobs).
class Timeline {
 public:
  /// Up to `max_candidates` gap start times >= asap where a job of length
  /// `len` fits, written into `out` (cleared first; caller-owned scratch).
  /// The final candidate list always contains at least one entry (the gap
  /// after the last interval is unbounded).
  void gap_candidates(Time asap, Time len, int max_candidates, std::vector<Time>& out) const {
    out.clear();
    Time cursor = asap;
    for (const Interval& iv : busy_) {
      if (iv.end <= cursor) continue;
      if (iv.start >= cursor + len) {
        out.push_back(cursor);
        if (static_cast<int>(out.size()) >= max_candidates) return;
      }
      cursor = std::max(cursor, iv.end);
    }
    out.push_back(cursor);
  }

  /// Earliest start >= from where a job of length `len` fits.
  [[nodiscard]] Time earliest_fit(Time from, Time len) const {
    Time cursor = from;
    for (const Interval& iv : busy_) {
      if (iv.end <= cursor) continue;
      if (iv.start >= cursor + len) return cursor;
      cursor = std::max(cursor, iv.end);
    }
    return cursor;
  }

  void insert(Time start, Time len) {
    const Interval iv{start, start + len};
    const auto pos = std::lower_bound(
        busy_.begin(), busy_.end(), iv,
        [](const Interval& a, const Interval& b) { return a.start < b.start; });
    busy_.insert(pos, iv);
  }

  [[nodiscard]] const std::vector<Interval>& intervals() const { return busy_; }

 private:
  std::vector<Interval> busy_;
};

/// Modified critical-path priority [12]: longest remaining path (task WCETs
/// plus message communication times) from the activity to a graph sink.
/// `message_reserve` is added per message hop; 0 gives the pure priority
/// metric, one bus cycle gives the ALAP delay bound (a message may have to
/// wait almost a full cycle for its next owned slot).
std::vector<Time> critical_paths(const BusLayout& layout, Time message_reserve) {
  const Application& app = layout.application();
  const auto& topo = app.topological_order();
  std::vector<Time> path(app.activity_count(), 0);
  auto slot = [&](ActivityRef a) {
    return a.is_task() ? a.index : app.task_count() + a.index;
  };
  auto cost_of = [&](ActivityRef a) {
    return a.is_task() ? app.task(a.as_task()).wcet
                       : layout.message_duration(a.as_message()) + message_reserve;
  };
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    Time best_succ = 0;
    for (const ActivityRef s : app.successors(*it)) {
      best_succ = std::max(best_succ, path[slot(s)]);
    }
    path[slot(*it)] = best_succ + cost_of(*it);
  }
  return path;
}

bool is_tt(const Application& app, ActivityRef a) {
  return a.is_task() ? app.task(a.as_task()).policy == TaskPolicy::Scs
                     : app.message(a.as_message()).cls == MessageClass::Static;
}

}  // namespace

Expected<StaticSchedule> build_static_schedule(const BusLayout& layout,
                                               const SchedulerOptions& options) {
  const Application& app = layout.application();
  const auto hp = app.hyperperiod();
  if (!hp.ok()) return hp.error();
  const Time H = hp.value();

  StaticSchedule schedule(H, app.node_count(), app.task_count(), app.message_count());

  auto slot_of = [&](ActivityRef a) {
    return a.is_task() ? a.index : app.task_count() + a.index;
  };

  // Enumerate TT jobs: one per instance of each SCS task / ST message.
  // Job key: (activity slot, instance).
  struct JobState {
    Job job;
    std::size_t unscheduled_tt_preds = 0;
    Time asap = 0;        // max finish over scheduled TT predecessors, and release
    Time finish = kTimeNone;
  };
  // jobs indexed by (slot, instance) via map from slot -> vector.
  std::vector<std::vector<JobState>> jobs(app.activity_count());
  for (const ActivityRef a : app.topological_order()) {
    if (!is_tt(app, a)) continue;
    const Time period = app.period_of(a);
    const auto instances = static_cast<int>(H / period);
    auto& vec = jobs[slot_of(a)];
    vec.reserve(static_cast<std::size_t>(instances));
    for (int k = 0; k < instances; ++k) {
      JobState js;
      js.job = Job{a, k, static_cast<Time>(k) * period};
      js.asap = js.job.release;
      if (a.is_task()) js.asap += app.task(a.as_task()).release_offset;
      for (const ActivityRef p : app.predecessors(a)) {
        // ET predecessors of TT activities are rejected by finalize(); all
        // predecessors here are TT and constrain readiness.
        if (is_tt(app, p)) ++js.unscheduled_tt_preds;
      }
      vec.push_back(js);
    }
  }

  const std::vector<Time> priority = critical_paths(layout, 0);
  // Delay budget for FPS-aware placement: reserve a full bus cycle per
  // downstream message hop (worst-case slot wait) so delaying an SCS task
  // cannot by itself sink its TT chain.
  const std::vector<Time> alap_reserve = critical_paths(layout, layout.cycle_len());

  // Ready pool ordered by (critical path desc, release asc, slot asc,
  // instance asc).
  struct ReadyKey {
    Time path;
    Time release;
    std::size_t slot;
    int instance;
    bool operator<(const ReadyKey& o) const {
      if (path != o.path) return path > o.path;
      if (release != o.release) return release < o.release;
      if (slot != o.slot) return slot < o.slot;
      return instance < o.instance;
    }
  };
  // Binary heap (keys are unique, so pop order matches the old std::set
  // iteration order exactly) — avoids a node allocation per push.
  std::vector<ReadyKey> ready;
  const auto ready_after = [](const ReadyKey& a, const ReadyKey& b) { return b < a; };
  auto ready_push = [&](const ReadyKey& k) {
    ready.push_back(k);
    std::push_heap(ready.begin(), ready.end(), ready_after);
  };
  auto make_key = [&](const JobState& js) {
    return ReadyKey{priority[slot_of(js.job.activity)], js.job.release,
                    slot_of(js.job.activity), js.job.instance};
  };
  std::size_t total_jobs = 0;
  for (auto& vec : jobs) {
    for (auto& js : vec) {
      ++total_jobs;
      if (js.unscheduled_tt_preds == 0) ready_push(make_key(js));
    }
  }

  // Per-node CPU timelines and FPS task parameter lists (zero jitter during
  // table construction; the holistic loop refines jitters afterwards).
  std::vector<Timeline> timelines(app.node_count());
  std::vector<std::vector<FpsTaskParams>> fps_on_node(app.node_count());
  for (std::uint32_t t = 0; t < app.task_count(); ++t) {
    const Task& task = app.tasks()[t];
    if (task.policy != TaskPolicy::Fps) continue;
    fps_on_node[index_of(task.node)].push_back(FpsTaskParams{
        static_cast<TaskId>(t), task.wcet, app.graph(task.graph).period, 0, task.priority});
  }

  // ST slot occupancy: used transmission time per (cycle, slot).
  std::map<std::pair<std::int64_t, int>, Time> slot_used;
  const Time cycle_len = layout.cycle_len();
  const Time slot_len = layout.config().static_slot_len;

  // Scratch for the candidate ranking below, reused across all jobs of this
  // build so the hot loop allocates only while growing to its high-water
  // capacity.
  std::vector<Time> starts;
  std::vector<Interval> base_merged;
  std::vector<Interval> cand_merged;
  BusyProfile base_profile;
  BusyProfile cand_profile;
  std::vector<Time> base_seeds;

  // Clamps `sorted` (busy intervals ordered by start) to [0, H], drops empty
  // intervals, merges overlap/adjacency, and splices in the optional `extra`
  // interval at its sorted position — producing exactly the interval list
  // that BusyProfile's normalizing constructor would for the same input,
  // without the per-candidate copy + sort.
  const auto clamp_merge_into = [H](std::span<const Interval> sorted,
                                    std::vector<Interval>& out, const Interval* extra) {
    out.clear();
    const auto clamped = [H](Interval iv) {
      iv.start = std::clamp<Time>(iv.start, 0, H);
      iv.end = std::clamp<Time>(iv.end, 0, H);
      return iv;
    };
    const auto emit = [&out](const Interval& iv) {
      if (iv.length() <= 0) return;
      if (!out.empty() && iv.start <= out.back().end) {
        out.back().end = std::max(out.back().end, iv.end);
      } else {
        out.push_back(iv);
      }
    };
    Interval pending{};
    bool has_pending = extra != nullptr;
    if (has_pending) pending = clamped(*extra);
    for (const Interval& raw : sorted) {
      const Interval iv = clamped(raw);
      if (has_pending && pending.start <= iv.start) {
        emit(pending);
        has_pending = false;
      }
      emit(iv);
    }
    if (has_pending) emit(pending);
  };

  auto schedule_tt_task = [&](JobState& js) {
    const Task& task = app.task(js.job.activity.as_task());
    const std::size_t node = index_of(task.node);
    Timeline& tl = timelines[node];

    const int candidates = options.placement == Placement::Asap ? 1
                                                                : options.placement_candidates;
    tl.gap_candidates(js.asap, task.wcet, candidates, starts);
    if (options.placement == Placement::MinimizeFpsImpact && !fps_on_node[node].empty()) {
      // The first-fit gaps all hug the existing SCS clump, which is exactly
      // what hurts FPS tasks (one long busy window).  Add deliberately
      // *delayed* placements spread over the remaining laxity so the
      // evaluation below can choose to fragment the table instead
      // (Fig. 2 line 11: place the task so FPS response times stay small).
      // Every candidate — spread or first-fit — is bounded ALAP-style: the
      // critical-path remainder (successor tasks, plus one bus cycle of
      // slot wait per message hop) is reserved, so no placement choice can
      // by itself push this task's TT chain past its deadline.
      const Time deadline = app.effective_deadline(js.job.activity);
      const Time latest =
          js.job.release + deadline - alap_reserve[slot_of(js.job.activity)];
      const Time span = latest - js.asap;
      if (span > 0) {
        for (int j = 1; j < std::max(2, options.placement_candidates); ++j) {
          const Time probe = js.asap + span * j / std::max(2, options.placement_candidates);
          const Time fitted = tl.earliest_fit(probe, task.wcet);
          if (fitted <= latest) starts.push_back(fitted);
        }
      }
      std::sort(starts.begin(), starts.end());
      starts.erase(std::unique(starts.begin(), starts.end()), starts.end());
      // Keep the earliest candidate unconditionally (there must be one),
      // drop everything beyond the ALAP bound.
      while (starts.size() > 1 && starts.back() > latest) starts.pop_back();
    }
    Time chosen = starts.front();
    if (options.placement == Placement::MinimizeFpsImpact && starts.size() > 1 &&
        !fps_on_node[node].empty()) {
      const std::span<const FpsTaskParams> fps(fps_on_node[node]);
      // Every candidate profile is the base timeline plus one interval, so
      // each task's converged busy value against the *base* profile is a
      // least-fixed-point lower bound for its candidate recurrence — a safe
      // seed (see fps_analysis.hpp).  Computing the base responses once per
      // job lets each candidate's fixed point start near its answer instead
      // of at zero: bit-identical costs, a fraction of the iterations.
      // (fps_on_node jitters are all zero here, so the returned response
      // equals the pre-jitter busy value the seed contract requires.)
      clamp_merge_into(tl.intervals(), base_merged, nullptr);
      base_profile.assign_normalized(base_merged, H);
      base_seeds.clear();
      for (const FpsTaskParams& t : fps) {
        base_seeds.push_back(fps_response_time(t, fps, base_profile, 4 * H));
      }
      Time best_cost = kTimeInfinity;
      for (const Time s : starts) {
        const Interval extra{s % H, s % H + task.wcet};
        clamp_merge_into(tl.intervals(), cand_merged, &extra);
        cand_profile.assign_normalized(cand_merged, H);
        const Time cost = fps_response_time_sum(fps, cand_profile, 4 * H, base_seeds);
        // Prefer lower FPS impact; ties go to the earlier start so the
        // schedule stays as compact as ASAP placement allows.
        if (cost < best_cost) {
          best_cost = cost;
          chosen = s;
        }
      }
    }
    tl.insert(chosen, task.wcet);
    js.finish = chosen + task.wcet;
    schedule.add_task_entry(
        ScheduledTask{js.job.activity.as_task(), js.job.instance, js.job.release, chosen,
                      js.finish},
        node);
    return true;
  };

  auto schedule_st_msg = [&](JobState& js) -> bool {
    const MessageId mid = js.job.activity.as_message();
    const Message& msg = app.message(mid);
    const NodeId sender_node = app.task(msg.sender).node;
    const auto& owned_slots = layout.static_slots_of(sender_node);
    const Time duration = layout.message_duration(mid);

    // Earliest bus cycle whose ST segment could start at or after ASAP is
    // floor(asap / cycle); slots within it may still start before ASAP, so
    // scan forward.
    std::int64_t cycle = js.asap / cycle_len;
    const std::int64_t last_cycle = cycle + options.max_slot_search_cycles;
    for (; cycle <= last_cycle; ++cycle) {
      for (const int s : owned_slots) {
        const Time slot_start = cycle * cycle_len + layout.static_slot_start(s);
        if (slot_start < js.asap) continue;
        Time& used = slot_used[{cycle, s}];
        if (used + duration > slot_len) continue;
        const Time start = slot_start + used;
        used += duration;
        // Frame semantics: the receiver CHI exposes the payload at the end
        // of the slot, so delivery (finish) is the slot boundary even when
        // several messages are packed into one frame.
        js.finish = slot_start + slot_len;
        schedule.add_message_entry(ScheduledMessage{mid, js.job.instance, js.job.release,
                                                    cycle, s, start, js.finish});
        return true;
      }
    }
    return false;
  };

  std::size_t scheduled = 0;
  while (!ready.empty()) {
    std::pop_heap(ready.begin(), ready.end(), ready_after);
    const ReadyKey key = ready.back();
    ready.pop_back();
    JobState& js = jobs[key.slot][static_cast<std::size_t>(key.instance)];

    const bool ok = js.job.activity.is_task() ? schedule_tt_task(js) : schedule_st_msg(js);
    if (!ok) {
      return make_error("list scheduler: no ST slot found for message '" +
                        app.activity_name(js.job.activity) + "' within the search bound");
    }
    ++scheduled;

    // Release successors (same instance index; graphs are self-contained).
    for (const ActivityRef succ : app.successors(js.job.activity)) {
      auto& svec = jobs[slot_of(succ)];
      if (svec.empty()) continue;  // ET successor: not part of the table
      JobState& sjs = svec[static_cast<std::size_t>(js.job.instance)];
      sjs.asap = std::max(sjs.asap, js.finish);
      if (--sjs.unscheduled_tt_preds == 0) ready_push(make_key(sjs));
    }
  }

  if (scheduled != total_jobs) {
    return make_error("list scheduler: precedence deadlock (internal error)");
  }

  schedule.finalize();
  return schedule;
}

}  // namespace flexopt
