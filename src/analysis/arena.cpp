#include "flexopt/analysis/arena.hpp"

#include "flexopt/analysis/incremental.hpp"
#include "flexopt/flexray/bus_layout.hpp"

namespace flexopt {

void AnalysisArena::bind(std::shared_ptr<const TaskStructure> s) {
  if (structure.get() == s.get() && completion.size() == s->n_acts) {
    ++reuses;
    return;
  }
  ++binds;
  structure = std::move(s);
  const TaskStructure& ts = *structure;
  completion.assign(ts.n_acts, 0);
  jitter.assign(ts.n_acts, 0);
  affected.reset(ts.n_acts);
  dirty.reset(ts.n_acts);
  work.clear();
  work.reserve(ts.n_acts);
  fps_params = ts.fps_params;  // jitter slots are refreshed before every use

  const std::size_t n_dyn = ts.dyn_messages.size();
  dyn_prepared.assign(n_dyn, DynPrepared{});
  dyn_excess.assign(n_dyn, 0);
  hp_begin.assign(n_dyn + 1, 0);
  lf_begin.assign(n_dyn + 1, 0);
  hp_entries.clear();
  lf_entries.clear();
}

void AnalysisArena::prepare_dyn_geometry(const BusLayout& layout) {
  const TaskStructure& ts = *structure;
  const std::size_t n_dyn = ts.dyn_messages.size();
  const Time cycle = layout.cycle_len();
  const Time minislot = layout.params().gd_minislot;
  const Time st_len = layout.st_segment_len();

  for (std::size_t d = 0; d < n_dyn; ++d) {
    const auto m = static_cast<MessageId>(ts.dyn_messages[d]);
    DynPrepared& in = dyn_prepared[d];
    in.fid = layout.frame_id(m);
    in.p_latest = layout.p_latest_tx(ts.dyn_sender_node[d]);
    in.cycle = cycle;
    in.minislot = minislot;
    in.st_segment_len = st_len;
    // dyn_sigma: the slot passes earliest when all lower slots are empty.
    in.sigma = cycle - (st_len + static_cast<Time>(in.fid - 1) * minislot);
    in.occupancy = layout.message_occupancy(m);
    dyn_excess[d] = layout.message_minislots(m) - 1;
  }

  // hp/lf sets in BusLayout::hp()/lf() order (ascending message index).
  // lf keeps zero-excess members: their infinite jitter still unbounds the
  // recurrence even though they contribute no excess minislots.
  hp_entries.clear();
  lf_entries.clear();
  for (std::size_t d = 0; d < n_dyn; ++d) {
    hp_begin[d] = static_cast<std::uint32_t>(hp_entries.size());
    lf_begin[d] = static_cast<std::uint32_t>(lf_entries.size());
    const int fid = dyn_prepared[d].fid;
    const std::int32_t pri = ts.msg_priority[ts.dyn_messages[d]];
    for (std::size_t d2 = 0; d2 < n_dyn; ++d2) {
      if (d2 == d) continue;
      const int f2 = dyn_prepared[d2].fid;
      if (f2 == fid && ts.msg_priority[ts.dyn_messages[d2]] < pri) {
        hp_entries.push_back({ts.dyn_messages[d2], ts.dyn_period[d2], 1});
      } else if (f2 < fid) {
        lf_entries.push_back({ts.dyn_messages[d2], ts.dyn_period[d2], dyn_excess[d2]});
      }
    }
  }
  hp_begin[n_dyn] = static_cast<std::uint32_t>(hp_entries.size());
  lf_begin[n_dyn] = static_cast<std::uint32_t>(lf_entries.size());
}

}  // namespace flexopt
