// Quickstart: model a small distributed application, let the optimiser pick
// a FlexRay bus configuration, verify schedulability, and watch it run in
// the simulator.
//
//   $ ./quickstart
//
// Walks through the full public API surface: Application -> optimisation
// (the "obc-cf" optimizer from the registry) -> BusLayout -> analysis ->
// simulation.

#include <iostream>

#include "flexopt/core/solver.hpp"
#include "flexopt/sim/simulator.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;

int main() {
  // ---- 1. Describe the platform and the application -----------------------
  Application app;
  const NodeId engine = app.add_node("engine");
  const NodeId brake = app.add_node("brake");
  const NodeId dash = app.add_node("dashboard");

  // A 10 ms time-triggered control loop: sample on the engine ECU, compute
  // on the brake ECU, actuate back on the engine ECU.
  const GraphId control = app.add_graph("control", timeunits::ms(10), timeunits::ms(10));
  const TaskId sample = app.add_task(control, "sample", engine, timeunits::us(400),
                                     TaskPolicy::Scs);
  const TaskId compute = app.add_task(control, "compute", brake, timeunits::us(900),
                                      TaskPolicy::Scs);
  const TaskId actuate = app.add_task(control, "actuate", engine, timeunits::us(300),
                                      TaskPolicy::Scs);
  app.add_message(control, "setpoint", sample, compute, 8, MessageClass::Static);
  app.add_message(control, "torque", compute, actuate, 6, MessageClass::Static);

  // A 20 ms event-triggered telemetry path to the dashboard.
  const GraphId telemetry = app.add_graph("telemetry", timeunits::ms(20), timeunits::ms(20));
  const TaskId collect = app.add_task(telemetry, "collect", brake, timeunits::us(500),
                                      TaskPolicy::Fps, /*priority=*/1);
  const TaskId display = app.add_task(telemetry, "display", dash, timeunits::us(700),
                                      TaskPolicy::Fps, /*priority=*/2);
  app.add_message(telemetry, "speed", collect, display, 16, MessageClass::Dynamic,
                  /*priority=*/0);

  if (auto ok = app.finalize(); !ok.ok()) {
    std::cerr << "model error: " << ok.error().message << "\n";
    return 1;
  }

  // ---- 2. Optimise the bus access configuration ---------------------------
  BusParams params;  // 10 Mbit/s FlexRay defaults
  CostEvaluator evaluator(app, params, AnalysisOptions{});
  auto optimizer = OptimizerRegistry::create("obc-cf");  // the paper's heuristic
  if (!optimizer.ok()) {
    std::cerr << optimizer.error().message << "\n";
    return 1;
  }
  const SolveReport report = optimizer.value()->solve(evaluator);
  const OptimizationOutcome& outcome = report.outcome;

  std::cout << "optimiser: " << outcome.algorithm << ", "
            << (outcome.feasible ? "schedulable" : "NOT schedulable") << ", cost "
            << fmt_double(outcome.cost.value, 1) << " us, " << outcome.evaluations
            << " full analyses in " << fmt_double(outcome.wall_seconds, 3) << " s\n";
  std::cout << "configuration: " << outcome.config.static_slot_count << " ST slots of "
            << format_time(outcome.config.static_slot_len) << ", DYN segment "
            << outcome.config.minislot_count << " minislots\n\n";

  // ---- 3. Inspect the worst-case response times ---------------------------
  auto layout = BusLayout::build(app, params, outcome.config);
  auto analysis = analyze_system(layout.value());
  Table wcrt({"activity", "WCRT", "deadline"});
  for (std::uint32_t t = 0; t < app.task_count(); ++t) {
    wcrt.add_row({app.tasks()[t].name,
                  format_time(analysis.value().task_completion[t]),
                  format_time(app.effective_deadline(ActivityRef::task(static_cast<TaskId>(t))))});
  }
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    wcrt.add_row({app.messages()[m].name,
                  format_time(analysis.value().message_completion[m]),
                  format_time(app.effective_deadline(ActivityRef::message(static_cast<MessageId>(m))))});
  }
  wcrt.print(std::cout);

  // ---- 4. Cross-check with the simulator ----------------------------------
  auto sim = simulate(layout.value(), analysis.value().schedule());
  std::cout << "\nsimulated one hyper-period: " << sim.value().unfinished_jobs
            << " unfinished jobs, " << sim.value().precedence_violations
            << " precedence violations (both should be 0).\n";
  return outcome.feasible ? 0 : 1;
}
