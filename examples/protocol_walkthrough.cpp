// FlexRay protocol walkthrough on the paper's Fig. 1 example: prints the
// complete bus timeline (static slots, minislot arbitration, priority
// resolution on shared FrameIDs, pLatestTx deferral) for two communication
// cycles, as a teaching aid for the media access control of Section 3.
//
//   $ ./protocol_walkthrough

#include <algorithm>
#include <iostream>

#include "flexopt/analysis/system_analysis.hpp"
#include "flexopt/gen/figures.hpp"
#include "flexopt/sim/simulator.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;

int main() {
  const FigureBundle bundle = build_fig1();
  auto layout = BusLayout::build(bundle.app, bundle.params, bundle.configs[0]);
  AnalysisOptions analysis_options;
  analysis_options.scheduler.placement = Placement::Asap;  // replay the figure's ASAP table
  auto analysis = analyze_system(layout.value(), analysis_options);
  SimOptions options;
  options.record_trace = true;
  auto sim = simulate(layout.value(), analysis.value().schedule(), options);
  if (!sim.ok()) {
    std::cerr << sim.error().message << "\n";
    return 1;
  }

  const BusLayout& l = layout.value();
  std::cout << "FlexRay cycle: " << format_time(l.cycle_len()) << "\n"
            << "  static segment : " << l.config().static_slot_count << " slots x "
            << format_time(l.config().static_slot_len) << "\n"
            << "  dynamic segment: " << l.config().minislot_count << " minislots x "
            << format_time(l.params().gd_minislot) << "\n\n";

  std::cout << "pLatestTx per node (last minislot a DYN transmission may start):\n";
  for (std::uint32_t n = 0; n < bundle.app.node_count(); ++n) {
    std::cout << "  " << bundle.app.node(static_cast<NodeId>(n)).name << ": "
              << l.p_latest_tx(static_cast<NodeId>(n)) << "\n";
  }

  auto trace = sim.value().trace;
  std::sort(trace.begin(), trace.end(),
            [](const TransmissionRecord& a, const TransmissionRecord& b) {
              return a.start < b.start;
            });

  std::cout << "\nBus timeline (first period):\n";
  Table table({"start", "end", "cycle", "segment", "slot", "cl:hop", "message", "sender"});
  for (const TransmissionRecord& r : trace) {
    if (r.instance != 0) continue;
    const Message& msg = bundle.app.messages()[index_of(r.message)];
    table.add_row({format_time(r.start), format_time(r.finish), std::to_string(r.cycle),
                   r.dynamic ? "DYN" : "ST",
                   std::to_string(r.dynamic ? r.slot : r.slot + 1),
                   std::to_string(r.cluster) + ":" + std::to_string(r.hop_index), msg.name,
                   bundle.app.node(bundle.app.task(msg.sender).node).name});
  }
  table.print(std::cout);

  std::cout << "\nThings to notice (cf. Section 3 of the paper):\n"
               "  * the DYN slot counter advances one minislot per unused FrameID;\n"
               "  * mf beats mg on their shared FrameID 4 (higher priority), pushing mg\n"
               "    a full cycle later;\n"
               "  * mh's FrameID 5 arrives past N3's pLatestTx in cycle 0, so it\n"
               "    transmits in cycle 1 even though it was ready from the start.\n";
  return 0;
}
