// The Section 7 cruise-controller case study, end to end: build the
// 54-task / 26-message / 5-node system, compare all four optimisation
// algorithms, then simulate the winning configuration and compare the
// observed response times against the analysis bounds.
//
//   $ ./cruise_control

#include <iostream>

#include "flexopt/core/solver.hpp"
#include "flexopt/gen/cruise_control.hpp"
#include "flexopt/sim/simulator.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;

int main() {
  const Application app = build_cruise_controller();
  const BusParams params = cruise_controller_params();
  std::cout << "cruise controller: " << app.task_count() << " tasks, "
            << app.message_count() << " messages, " << app.graph_count()
            << " graphs on " << app.node_count() << " ECUs\n\n";

  AnalysisOptions fast;
  fast.scheduler.placement = Placement::Asap;

  // Compare the algorithms of the paper — every registered optimizer runs
  // through the same Optimizer/SolveRequest interface.
  Table algs({"algorithm", "schedulable", "cost (us)", "analyses", "time (s)"});
  OptimizationOutcome best;
  for (const OptimizerInfo& info : OptimizerRegistry::list()) {
    auto optimizer = OptimizerRegistry::create(info.name);
    if (!optimizer.ok()) {
      std::cerr << optimizer.error().message << "\n";
      return 1;
    }
    SolveRequest request;
    if (info.name == "sa") request.max_evaluations = 500;
    CostEvaluator evaluator(app, params, fast);
    const SolveReport report = optimizer.value()->solve(evaluator, request);
    const OptimizationOutcome& o = report.outcome;
    algs.add_row({o.algorithm, o.feasible ? "yes" : "no", fmt_double(o.cost.value, 1),
                  std::to_string(o.evaluations), fmt_double(o.wall_seconds, 3)});
    if (o.cost.value < best.cost.value) best = o;
  }
  algs.print(std::cout);
  std::cout << "\nbest: " << best.algorithm << " -> " << best.config.static_slot_count
            << " ST slots x " << format_time(best.config.static_slot_len) << ", DYN "
            << best.config.minislot_count << " minislots\n\n";

  // Analyse + simulate the best configuration.
  auto layout = BusLayout::build(app, params, best.config);
  auto analysis = analyze_system(layout.value());
  auto sim = simulate(layout.value(), analysis.value().schedule());
  if (!sim.ok()) {
    std::cerr << "sim: " << sim.error().message << "\n";
    return 1;
  }

  // Show the message-level envelope: observed vs guaranteed.
  Table msgs({"message", "class", "observed", "WCRT bound", "deadline"});
  for (std::uint32_t m = 0; m < app.message_count(); ++m) {
    const Time observed = sim.value().message_worst_completion[m];
    msgs.add_row({app.messages()[m].name,
                  app.messages()[m].cls == MessageClass::Static ? "ST" : "DYN",
                  observed == kTimeNone ? "-" : format_time(observed),
                  format_time(analysis.value().message_completion[m]),
                  format_time(app.effective_deadline(ActivityRef::message(static_cast<MessageId>(m))))});
  }
  msgs.print(std::cout);
  std::cout << "\nEvery observed completion must sit below its WCRT bound, and every\n"
               "bound below its deadline for the configuration to be certified.\n";
  return best.feasible ? 0 : 1;
}
