// Task mapping + bus configuration co-exploration: describe an application
// *without* fixing which ECU runs what, and let the library search mappings
// while configuring the FlexRay cycle for each candidate — the outer-loop
// usage the paper motivates the fast OBC-CF heuristic with.
//
//   $ ./mapping_exploration

#include <iostream>

#include "flexopt/core/mapping.hpp"
#include "flexopt/core/solver.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;

int main() {
  // A body-electronics style application on 3 ECUs: a TT window-control
  // loop and an ET diagnostics chain; flows become bus messages only when
  // their endpoints land on different ECUs.
  LogicalApplication logical;
  logical.node_count = 3;
  logical.graphs.push_back({"window_ctrl", timeunits::ms(10), timeunits::ms(8), true});
  logical.graphs.push_back({"diagnostics", timeunits::ms(40), timeunits::ms(30), false});
  auto add_chain = [&](std::uint32_t graph, const char* prefix, int count, Time base_wcet,
                       int bytes) {
    for (int i = 0; i < count; ++i) {
      logical.tasks.push_back({std::string(prefix) + std::to_string(i), graph,
                               base_wcet + timeunits::us(120 * i), i});
      if (i > 0) {
        const auto idx = static_cast<std::uint32_t>(logical.tasks.size());
        logical.flows.push_back({idx - 2, idx - 1, bytes, i});
      }
    }
  };
  add_chain(0, "wc", 6, timeunits::us(400), 8);
  add_chain(1, "dx", 5, timeunits::us(700), 16);

  BusParams params;  // 10 Mbit/s defaults

  // Baseline: utilisation-balanced mapping, bus configured by OBC-CF.
  const std::vector<int> balanced = logical.balanced_mapping();
  auto balanced_app = logical.materialize(balanced);
  if (!balanced_app.ok()) {
    std::cerr << balanced_app.error().message << "\n";
    return 1;
  }
  auto baseline_optimizer = OptimizerRegistry::create("obc-cf");
  if (!baseline_optimizer.ok()) {
    std::cerr << baseline_optimizer.error().message << "\n";
    return 1;
  }
  CostEvaluator evaluator(balanced_app.value(), params, AnalysisOptions{});
  const OptimizationOutcome baseline =
      baseline_optimizer.value()->solve(evaluator).outcome;

  // Co-exploration of mapping + bus configuration.
  CurveFitDynSearch strategy;
  MappingOptions options;
  options.moves_per_restart = 30;
  options.stop_at_first_feasible = false;
  auto outcome = optimize_mapping(logical, params, AnalysisOptions{}, strategy, options);
  if (!outcome.ok()) {
    std::cerr << outcome.error().message << "\n";
    return 1;
  }

  Table table({"approach", "schedulable", "cost (us)", "bus messages", "analyses"});
  table.add_row({"balanced mapping", baseline.feasible ? "yes" : "no",
                 fmt_double(baseline.cost.value, 1),
                 std::to_string(balanced_app.value().message_count()),
                 std::to_string(baseline.evaluations)});
  auto best_app = logical.materialize(outcome.value().mapping);
  table.add_row({"co-explored mapping", outcome.value().bus.feasible ? "yes" : "no",
                 fmt_double(outcome.value().bus.cost.value, 1),
                 std::to_string(best_app.value().message_count()),
                 std::to_string(outcome.value().evaluations)});
  table.print(std::cout);

  std::cout << "\nchosen mapping:";
  for (std::size_t i = 0; i < outcome.value().mapping.size(); ++i) {
    std::cout << " " << logical.tasks[i].name << "->N" << outcome.value().mapping[i];
  }
  std::cout << "\n\nCo-exploring the mapping lets the optimiser trade CPU balance against\n"
               "bus traffic (fewer crossings = fewer messages), on top of the per-mapping\n"
               "FlexRay cycle optimisation.\n";
  return outcome.value().bus.feasible ? 0 : 1;
}
