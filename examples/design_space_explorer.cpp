// Interactive-style design space exploration: sweep the DYN segment length
// for a mid-size system and print the cost landscape — the view behind
// Fig. 7 and the curve-fitting heuristic of Fig. 8.  Optionally changes the
// number of ST slots to show the outer OBC loop's effect.
//
//   $ ./design_space_explorer [extra_st_slots]

#include <cstdlib>
#include <iostream>

#include "flexopt/analysis/system_analysis.hpp"
#include "flexopt/core/config_builder.hpp"
#include "flexopt/flexray/bus_layout.hpp"
#include "flexopt/gen/synthetic.hpp"
#include "flexopt/util/table.hpp"

using namespace flexopt;

int main(int argc, char** argv) {
  const int extra_slots = argc > 1 ? std::atoi(argv[1]) : 0;

  SyntheticSpec spec;
  spec.nodes = 4;
  spec.seed = 2024;
  BusParams params;
  params.gd_minislot = timeunits::us(5);
  auto generated = generate_synthetic(spec, params);
  if (!generated.ok()) {
    std::cerr << "generator: " << generated.error().message << "\n";
    return 1;
  }
  const Application& app = generated.value();
  std::cout << "system: " << app.task_count() << " tasks, " << app.message_count()
            << " messages on " << app.node_count() << " nodes; exploring with "
            << extra_slots << " extra ST slots\n\n";

  BusConfig config;
  config.frame_id = assign_frame_ids_by_criticality(app, params);
  const auto senders = st_sender_nodes(app);
  config.static_slot_count = static_cast<int>(senders.size()) + extra_slots;
  config.static_slot_owner = assign_static_slots(app, config.static_slot_count);
  config.static_slot_len = min_static_slot_len(app, params);

  const DynBounds bounds = dyn_segment_bounds(
      app, params, static_cast<Time>(config.static_slot_count) * config.static_slot_len);
  if (!bounds.feasible()) {
    std::cerr << "no admissible DYN segment length\n";
    return 1;
  }

  AnalysisOptions options;
  options.scheduler.placement = Placement::Asap;

  Table table({"DYN minislots", "gdCycle", "cost (us)", "schedulable"});
  const int samples = 16;
  const int stride = std::max(1, (bounds.max_minislots - bounds.min_minislots) / (samples - 1));
  int best_minislots = bounds.min_minislots;
  double best_cost = 1e300;
  for (int ms = bounds.min_minislots; ms <= bounds.max_minislots; ms += stride) {
    config.minislot_count = ms;
    auto layout = BusLayout::build(app, params, config);
    if (!layout.ok()) continue;
    auto analysis = analyze_system(layout.value(), options);
    if (!analysis.ok()) continue;
    const Cost& cost = analysis.value().cost;
    table.add_row({std::to_string(ms), format_time(layout.value().cycle_len()),
                   fmt_double(cost.value, 1), cost.schedulable ? "yes" : "no"});
    if (cost.value < best_cost) {
      best_cost = cost.value;
      best_minislots = ms;
    }
  }
  table.print(std::cout);
  std::cout << "\nbest sampled DYN length: " << best_minislots << " minislots (cost "
            << fmt_double(best_cost, 1) << " us)\n"
            << "This is the landscape the OBC-CF heuristic navigates with ~5 analyses\n"
            << "plus curve fitting instead of a full sweep.\n";
  return 0;
}
